"""ALT: A* with landmark lower bounds (Goldberg & Harrelson).

The directions servers the paper targets (GoogleMap, MapQuest...) do not
run plain Dijkstra; they precompute auxiliary structures.  ALT is the
classic goal-directed technique compatible with our cost accounting: pick
a few landmark nodes, precompute shortest distances from each, and use the
triangle inequality

    d(n, t)  >=  | d(L, t) - d(L, n) |        for every landmark L

as an admissible A* heuristic that is usually much tighter than Euclidean
distance (it "knows" about obstacles and travel-time weights).  We use it
as the server's fast point-to-point engine ablation in the search
benchmarks.

Directed networks are supported: the index keeps forward distances
``d(L -> v)`` plus backward distances ``d(v -> L)`` (computed on the
reverse adjacency) and takes the max of both triangle-inequality bounds,
the standard directed-ALT construction.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import GraphError, UnknownNodeError
from repro.network.graph import NodeId
from repro.search.astar import astar_path
from repro.search.dijkstra import dijkstra_sssp
from repro.search.multi import (
    MSMDResult,
    PreprocessingProcessor,
    _validate,
)
from repro.search.result import PathResult, SearchStats

__all__ = [
    "LandmarkIndex",
    "alt_path",
    "select_landmarks_farthest",
    "ALTPairwiseProcessor",
]


def select_landmarks_farthest(
    network, count: int, seed_node: NodeId | None = None
) -> list[NodeId]:
    """Farthest-point landmark selection.

    Start from an arbitrary node, repeatedly add the node maximizing the
    network distance to the nearest already-chosen landmark.  Classic ALT
    practice: pushes landmarks to the periphery where their bounds are
    tightest.

    Parameters
    ----------
    count:
        Number of landmarks (>= 1).
    seed_node:
        Starting node; defaults to the first node in iteration order.
        The seed itself is *not* kept as a landmark (it is usually
        central, hence useless) unless ``count`` exceeds what farthest
        selection can produce.
    """
    if count < 1:
        raise ValueError("need at least one landmark")
    if network.num_nodes == 0:
        raise GraphError("cannot select landmarks on an empty network")
    if seed_node is None:
        seed_node = next(network.nodes())
    elif seed_node not in network:
        raise UnknownNodeError(seed_node)

    distances, _pred = dijkstra_sssp(network, seed_node)
    first = max(distances, key=lambda n: (distances[n], repr(n)))
    landmarks = [first]
    min_dist = dict(dijkstra_sssp(network, first)[0])
    while len(landmarks) < count:
        candidate = max(min_dist, key=lambda n: (min_dist[n], repr(n)))
        if candidate in landmarks or min_dist[candidate] <= 0:
            break  # network exhausted (fewer distinct extremes than count)
        landmarks.append(candidate)
        for node, dist in dijkstra_sssp(network, candidate)[0].items():
            if dist < min_dist.get(node, float("inf")):
                min_dist[node] = dist
    return landmarks


class LandmarkIndex:
    """Precomputed landmark distances powering the ALT heuristic.

    Parameters
    ----------
    network:
        Network to index (directed or undirected).
    num_landmarks:
        Landmarks to select (farthest-point strategy over forward
        distances).
    landmarks:
        Explicit landmark nodes; overrides ``num_landmarks``.

    Notes
    -----
    Preprocessing runs one full Dijkstra per landmark (two on directed
    networks, forward plus reverse) — O(L * E log N) — and stores O(L * N)
    distances; queries then get an admissible, consistent heuristic in
    O(L) per node.
    """

    def __init__(
        self,
        network,
        num_landmarks: int = 4,
        landmarks: Sequence[NodeId] | None = None,
    ) -> None:
        self._network = network
        if landmarks is None:
            chosen = select_landmarks_farthest(network, num_landmarks)
        else:
            chosen = list(dict.fromkeys(landmarks))
            if not chosen:
                raise ValueError("need at least one landmark")
            for node in chosen:
                if node not in network:
                    raise UnknownNodeError(node)
        self._landmarks = chosen
        # Forward tables: d(L -> v).
        self._forward: dict[NodeId, dict[NodeId, float]] = {
            lm: dict(dijkstra_sssp(network, lm)[0]) for lm in chosen
        }
        if getattr(network, "directed", False):
            from repro.network.views import ReverseView

            backward_net = ReverseView(network)
            # Backward tables: d(v -> L), via SSSP on the reverse graph.
            self._backward: dict[NodeId, dict[NodeId, float]] = {
                lm: dict(dijkstra_sssp(backward_net, lm)[0]) for lm in chosen
            }
        else:
            self._backward = self._forward

    @property
    def landmarks(self) -> list[NodeId]:
        """The landmark nodes."""
        return list(self._landmarks)

    def heuristic_for(self, destination: NodeId):
        """Admissible heuristic ``h(n) >= 0`` lower-bounding d(n, dest).

        Uses both triangle-inequality bounds per landmark:
        ``d(L->t) - d(L->n)`` (forward table) and ``d(n->L) - d(t->L)``
        (backward table).  Unreachable nodes (absent from a table) get a
        conservative 0 contribution from that landmark.
        """
        if destination not in self._network:
            raise UnknownNodeError(destination)
        anchors = [
            (
                self._forward[lm],
                self._forward[lm].get(destination),
                self._backward[lm],
                self._backward[lm].get(destination),
            )
            for lm in self._landmarks
        ]

        def heuristic(node: NodeId) -> float:
            best = 0.0
            for forward, fwd_t, backward, bwd_t in anchors:
                if fwd_t is not None:
                    fwd_n = forward.get(node)
                    if fwd_n is not None and fwd_t - fwd_n > best:
                        best = fwd_t - fwd_n
                if bwd_t is not None:
                    bwd_n = backward.get(node)
                    if bwd_n is not None and bwd_n - bwd_t > best:
                        best = bwd_n - bwd_t
            return best

        return heuristic

    def lower_bound(self, u: NodeId, v: NodeId) -> float:
        """Landmark lower bound on the network distance d(u, v)."""
        return self.heuristic_for(v)(u)


def alt_path(
    network,
    source: NodeId,
    destination: NodeId,
    index: LandmarkIndex,
    stats: SearchStats | None = None,
) -> PathResult:
    """Point-to-point shortest path via A* with the ALT heuristic.

    Exactness follows from the heuristic's admissibility (triangle
    inequality on true network distances).

    Raises
    ------
    NoPathError
        If ``destination`` is unreachable.
    """
    return astar_path(
        network,
        source,
        destination,
        heuristic=index.heuristic_for(destination),
        stats=stats,
    )


class ALTPairwiseProcessor(PreprocessingProcessor):
    """MSMD processor answering each (s, t) pair with an ALT search.

    The goal-directed ALT engine cannot share spanning trees (its search
    is shaped by one destination), so obfuscated queries are evaluated
    pair by pair — but each pair rides the landmark lower bounds, so the
    per-pair cost is far below plain Dijkstra.  The landmark index
    follows the :class:`~repro.search.multi.PreprocessingProcessor`
    lifecycle: injected, or built on first use per network and memoized.

    Parameters
    ----------
    index:
        A prebuilt :class:`LandmarkIndex` to use for every query.
    num_landmarks:
        Landmarks for on-demand index builds (when ``index`` is omitted).
    """

    name = "alt"

    def __init__(
        self, index: LandmarkIndex | None = None, num_landmarks: int = 4
    ) -> None:
        super().__init__(artifact=index)
        self._num_landmarks = num_landmarks

    def _build(self, network) -> LandmarkIndex:
        return LandmarkIndex(network, num_landmarks=self._num_landmarks)

    def index_for(self, network) -> LandmarkIndex:
        """The landmark index answering queries over ``network``."""
        return self.artifact_for(network)

    def process(self, network, sources, destinations) -> MSMDResult:
        _validate(sources, destinations)
        index = self.index_for(network)
        result = MSMDResult()
        for s in sources:
            for t in destinations:
                stats = SearchStats()
                path = alt_path(network, s, t, index, stats=stats)
                result.paths[(s, t)] = path
                result.stats.merge(stats)
                result.searches += 1
        return result
