"""Point-to-point queries over a contracted graph.

A CH query is a bidirectional Dijkstra restricted to *upward* edges: the
forward search from ``s`` only relaxes overlay edges leading to
higher-ranked nodes, the backward search from ``t`` only traverses (in
reverse) overlay edges arriving from higher-ranked nodes.  Every shortest
path in the original network corresponds to an up-down path in the overlay
meeting at its highest-ranked node, so the two cones intersect at the true
distance while settling a tiny fraction of the network.

Two refinements from the CH literature are implemented:

* **stall-on-demand** — a settled node whose label is beaten by an
  incoming edge from a higher-ranked settled node cannot lie on a shortest
  up-down path; its out-edges are not relaxed (it still participates in
  the meeting-point bookkeeping, which is safe because its label is an
  upper bound);
* **recursive shortcut unpacking** — result paths are expanded back into
  original network edges via each shortcut's recorded middle node, so
  callers receive the same :class:`~repro.search.result.PathResult` the
  Dijkstra-family engines produce.

Cost accounting: settled nodes, relaxed edges and heap pushes go to the
same :class:`~repro.search.result.SearchStats` contract as every other
engine, so the Lemma 1 comparisons in :mod:`repro.search.cost_model` and
experiment E2/E9 tables can quote CH settled-node counts directly.  On
planar grids a CH query typically settles ``O(sqrt(n))``-ish nodes versus
Lemma 1's ``O(||s,t||^2)`` disc for plain Dijkstra.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.graph import NodeId
from repro.obs import record as _obs_record
from repro.search.ch.contract import ContractedGraph
from repro.search.result import PathResult, SearchStats

__all__ = ["ch_path", "ch_distance", "unpack_path"]

_INF = float("inf")


def _overlay_route(
    meeting: NodeId,
    source: NodeId,
    destination: NodeId,
    fwd_pred: dict[NodeId, NodeId],
    bwd_pred: dict[NodeId, NodeId],
) -> list[NodeId]:
    """Overlay-edge path ``source .. meeting .. destination``.

    Walks the forward predecessor tree back to ``source`` and the backward
    tree on to ``destination``; shared by the point-to-point query and the
    many-to-many table reconstruction.
    """
    overlay: list[NodeId] = [meeting]
    node = meeting
    while node != source:
        node = fwd_pred[node]
        overlay.append(node)
    overlay.reverse()
    node = meeting
    while node != destination:
        node = bwd_pred[node]
        overlay.append(node)
    return overlay


def _upward_sweep(
    graph: ContractedGraph,
    start: NodeId,
    forward: bool,
    stats: SearchStats,
    stall: bool = True,
) -> tuple[dict[NodeId, float], dict[NodeId, NodeId], set[NodeId]]:
    """Exhaustive upward search from ``start``.

    Returns ``(distances, predecessors, stalled)`` over the whole upward
    search space (used by the many-to-many buckets; the point-to-point
    query below interleaves two bounded sweeps instead).  Runs on a lazy
    ``heapq`` frontier — the hot loop of every CH operation.
    """
    rec = _obs_record.RECORDER
    if rec is not None:
        base = (stats.settled_nodes, stats.relaxed_edges, stats.heap_pushes)
    relax_adj = graph._up_out if forward else graph._up_in
    against_adj = graph._up_in if forward else graph._up_out
    dist: dict[NodeId, float] = {start: 0.0}
    pred: dict[NodeId, NodeId] = {}
    settled: dict[NodeId, float] = {}
    stalled: set[NodeId] = set()
    counter = 1
    heap: list[tuple[float, int, NodeId]] = [(0.0, 0, start)]
    stats.heap_pushes += 1
    max_d = stats.max_settled_distance
    while heap:
        d, _, node = heappop(heap)
        if node in settled:
            continue
        settled[node] = d
        stats.settled_nodes += 1
        if d > max_d:
            max_d = d
        if stall:
            is_stalled = False
            for higher, w in against_adj[node].items():
                hd = settled.get(higher)
                if hd is not None and hd + w < d:
                    is_stalled = True
                    break
            if is_stalled:
                stalled.add(node)
                continue
        for nbr, w in relax_adj[node].items():
            if nbr in settled:
                continue
            stats.relaxed_edges += 1
            nd = d + w
            if nd < dist.get(nbr, _INF):
                dist[nbr] = nd
                pred[nbr] = node
                heappush(heap, (nd, counter, nbr))
                counter += 1
                stats.heap_pushes += 1
    stats.max_settled_distance = max_d
    if rec is not None:
        rec.record(
            "ch_upward",
            stats.settled_nodes - base[0],
            stats.relaxed_edges - base[1],
            stats.heap_pushes - base[2],
        )
    return settled, pred, stalled


def ch_path(
    graph: ContractedGraph,
    source: NodeId,
    destination: NodeId,
    stats: SearchStats | None = None,
) -> PathResult:
    """Shortest path between two nodes of a contracted network.

    Same contract as :func:`repro.search.dijkstra.dijkstra_path`: returns
    a :class:`PathResult` whose ``nodes`` are original network nodes
    (shortcuts fully unpacked).

    Raises
    ------
    UnknownNodeError
        If either endpoint is not part of the contracted graph.
    NoPathError
        If ``destination`` is unreachable from ``source``.
    """
    if source not in graph:
        raise UnknownNodeError(source)
    if destination not in graph:
        raise UnknownNodeError(destination)
    if stats is None:
        stats = SearchStats()
    if source == destination:
        return PathResult(source, destination, (source,), 0.0)
    rec = _obs_record.RECORDER
    if rec is not None:
        base = (stats.settled_nodes, stats.relaxed_edges, stats.heap_pushes)

    relaxers = (graph._up_out, graph._up_in)
    stallers = (graph._up_in, graph._up_out)
    dist: list[dict[NodeId, float]] = [{source: 0.0}, {destination: 0.0}]
    pred: list[dict[NodeId, NodeId]] = [{}, {}]
    settled: list[dict[NodeId, float]] = [{}, {}]
    heaps: list[list[tuple[float, int, NodeId]]] = [
        [(0.0, 0, source)],
        [(0.0, 0, destination)],
    ]
    counter = 1
    stats.heap_pushes += 2

    best = _INF
    meeting: NodeId | None = None

    while True:
        # Drain lazily deleted entries, then pick the smaller frontier.
        for heap, done in zip(heaps, settled):
            while heap and heap[0][2] in done:
                heappop(heap)
        min0 = heaps[0][0][0] if heaps[0] else _INF
        min1 = heaps[1][0][0] if heaps[1] else _INF
        if min0 < best and (min0 <= min1 or min1 >= best):
            side = 0
        elif min1 < best:
            side = 1
        else:
            break
        d, _, node = heappop(heaps[side])
        my_settled = settled[side]
        my_settled[node] = d
        stats.settled_nodes += 1
        if d > stats.max_settled_distance:
            stats.max_settled_distance = d

        other_d = settled[1 - side].get(node)
        if other_d is None:
            other_d = dist[1 - side].get(node)
        if other_d is not None and d + other_d < best:
            best = d + other_d
            meeting = node

        # Stall-on-demand: a label beaten via a higher-ranked settled node
        # cannot extend to a shortest up-down path.
        is_stalled = False
        for higher, w in stallers[side][node].items():
            hd = my_settled.get(higher)
            if hd is not None and hd + w < d:
                is_stalled = True
                break
        if is_stalled:
            continue

        my_dist = dist[side]
        my_pred = pred[side]
        my_heap = heaps[side]
        for nbr, w in relaxers[side][node].items():
            if nbr in my_settled:
                continue
            stats.relaxed_edges += 1
            nd = d + w
            if nd < my_dist.get(nbr, _INF):
                my_dist[nbr] = nd
                my_pred[nbr] = node
                heappush(my_heap, (nd, counter, nbr))
                counter += 1
                stats.heap_pushes += 1

    if rec is not None:
        rec.record(
            "ch_query",
            stats.settled_nodes - base[0],
            stats.relaxed_edges - base[1],
            stats.heap_pushes - base[2],
        )
    if meeting is None:
        raise NoPathError(source, destination)

    overlay = _overlay_route(meeting, source, destination, pred[0], pred[1])
    return PathResult(
        source=source,
        destination=destination,
        nodes=tuple(unpack_path(graph, overlay)),
        distance=best,
    )


def ch_distance(
    graph: ContractedGraph,
    source: NodeId,
    destination: NodeId,
    stats: SearchStats | None = None,
) -> float:
    """Shortest distance only (still runs the full bidirectional query)."""
    return ch_path(graph, source, destination, stats=stats).distance


def unpack_path(graph: ContractedGraph, overlay_nodes: list[NodeId]) -> list[NodeId]:
    """Expand a path over overlay edges into original network nodes.

    Each overlay edge ``(u, v)`` is either an original edge (kept as-is)
    or a shortcut with a recorded middle node ``m``, replaced recursively
    by ``(u, m)`` and ``(m, v)``.  Implemented with an explicit stack so
    deeply nested shortcuts cannot hit the interpreter recursion limit.
    """
    if not overlay_nodes:
        return []
    result: list[NodeId] = [overlay_nodes[0]]
    stack: list[tuple[NodeId, NodeId]] = []
    for u, v in zip(reversed(overlay_nodes[:-1]), reversed(overlay_nodes[1:])):
        stack.append((u, v))
    while stack:
        u, v = stack.pop()
        mid = graph.middle(u, v)
        if mid is None:
            result.append(v)
        else:
            stack.append((mid, v))
            stack.append((u, mid))
    return result
