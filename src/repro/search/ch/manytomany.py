"""Bucket-based many-to-many CH queries (Knopp et al., ALENEX 2007).

The obfuscator turns one real request into an ``|S| x |T|`` obfuscated
query, and the paper's server must answer *all* pairs — the exact workload
the bucket algorithm was designed for.  Instead of |S| x |T| bidirectional
queries it runs:

1. one backward upward sweep per destination ``t``, dropping an entry
   ``(t, d)`` into the *bucket* of every node it settles;
2. one forward upward sweep per source ``s``, scanning the bucket of every
   settled node ``v`` and minimizing ``d_f(s, v) + d_b(v, t)`` per pair.

Total work is ``m + n`` truncated sweeps plus bucket scans, so the full
distance table costs barely more than answering each side once — compare
Lemma 1's ``sum_s max_t ||s,t||^2`` for the shared-tree processor in
:mod:`repro.search.multi` (and see :mod:`repro.search.cost_model`).

:class:`CHManyToManyProcessor` adapts the algorithm to the standard
:class:`~repro.search.multi.MultiSourceMultiDestProcessor` contract so the
server, experiments and benchmarks can swap it in anywhere.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import NoPathError
from repro.network.graph import NodeId
from repro.search.ch.contract import ContractedGraph, contract_network
from repro.search.ch.query import _overlay_route, _upward_sweep, unpack_path
from repro.search.multi import (
    MSMDResult,
    PreprocessingProcessor,
    UnionPassResult,
    _screen_union_queries,
    _slice_union_tables,
    _union_order,
    _validate,
)
from repro.search.result import PathResult, SearchStats

__all__ = ["ch_many_to_many", "CHManyToManyProcessor"]


def ch_many_to_many(
    graph: ContractedGraph,
    sources: Sequence[NodeId],
    destinations: Sequence[NodeId],
    stats: SearchStats | None = None,
) -> dict[tuple[NodeId, NodeId], PathResult]:
    """Shortest paths for every pair in ``sources x destinations``.

    Returns ``{(s, t): PathResult}`` with unreachable pairs omitted.
    Distances are exact; stall-on-demand prunes each sweep and stalled
    nodes are kept out of the buckets (a stalled label can never be part
    of a shortest up-down path).

    Raises
    ------
    UnknownNodeError
        If any endpoint is not part of the contracted graph.
    """
    if stats is None:
        stats = SearchStats()
    from repro.exceptions import UnknownNodeError

    for node in list(sources) + list(destinations):
        if node not in graph:
            raise UnknownNodeError(node)

    # Phase 1: backward sweeps fill the buckets.
    buckets: dict[NodeId, list[tuple[int, float]]] = {}
    backward: list[tuple[dict[NodeId, float], dict[NodeId, NodeId]]] = []
    for j, t in enumerate(destinations):
        settled, pred, stalled = _upward_sweep(graph, t, forward=False, stats=stats)
        backward.append((settled, pred))
        for v, d in settled.items():
            if v in stalled:
                continue
            buckets.setdefault(v, []).append((j, d))

    # Phase 2: forward sweeps scan the buckets.
    best: dict[tuple[int, int], tuple[float, NodeId]] = {}
    forward: list[tuple[dict[NodeId, float], dict[NodeId, NodeId]]] = []
    for i, s in enumerate(sources):
        settled, pred, stalled = _upward_sweep(graph, s, forward=True, stats=stats)
        forward.append((settled, pred))
        for v, df in settled.items():
            if v in stalled:
                continue
            bucket = buckets.get(v)
            if not bucket:
                continue
            for j, db in bucket:
                total = df + db
                entry = best.get((i, j))
                if entry is None or total < entry[0]:
                    best[(i, j)] = (total, v)

    # Phase 3: rebuild and unpack one path per reachable pair.
    results: dict[tuple[NodeId, NodeId], PathResult] = {}
    for (i, j), (distance, meeting) in best.items():
        s, t = sources[i], destinations[j]
        if s == t:
            results[(s, t)] = PathResult(s, t, (s,), 0.0)
            continue
        overlay = _overlay_route(meeting, s, t, forward[i][1], backward[j][1])
        results[(s, t)] = PathResult(
            source=s,
            destination=t,
            nodes=tuple(unpack_path(graph, overlay)),
            distance=distance,
        )
    return results


class CHManyToManyProcessor(PreprocessingProcessor):
    """MSMD processor backed by a contracted graph.

    Parameters
    ----------
    graph:
        A prebuilt :class:`ContractedGraph` to query (e.g. loaded via
        :mod:`repro.search.ch.persist`).  When omitted, the processor
        contracts each network it sees on first use and memoizes the
        result for the network's lifetime — preprocessing is paid once,
        every later query rides the hierarchy.
    witness_settled_limit:
        Forwarded to :func:`~repro.search.ch.contract.contract_network`
        for on-demand contractions.

    Notes
    -----
    Matches :class:`~repro.search.multi.NaivePairwiseProcessor` semantics:
    an unreachable (s, t) pair raises
    :class:`~repro.exceptions.NoPathError`.
    """

    name = "ch"

    def __init__(
        self,
        graph: ContractedGraph | None = None,
        witness_settled_limit: int = 500,
    ) -> None:
        super().__init__(artifact=graph)
        self._witness_settled_limit = witness_settled_limit

    def _build(self, network) -> ContractedGraph:
        return contract_network(
            network, witness_settled_limit=self._witness_settled_limit
        )

    def graph_for(self, network) -> ContractedGraph:
        """The contracted graph answering queries over ``network``."""
        return self.artifact_for(network)

    def process(self, network, sources, destinations) -> MSMDResult:
        _validate(sources, destinations)
        graph = self.graph_for(network)
        result = MSMDResult()
        paths = ch_many_to_many(graph, sources, destinations, stats=result.stats)
        for s in sources:
            for t in destinations:
                path = paths.get((s, t))
                if path is None:
                    raise NoPathError(s, t)
                result.paths[(s, t)] = path
        result.searches = len(sources) + len(destinations)
        return result

    def process_union(self, network, set_queries) -> UnionPassResult:
        """One bucket pass over the unions of all coalesced queries.

        The backward sweep from a destination and the forward sweep from
        a source are both independent of the rest of the query, so one
        sweep per *distinct* endpoint across every coalesced query
        answers them all: ``|union S| + |union T|`` sweeps instead of
        ``sum (|S_i| + |T_i|)``.  Per-pair minimization over the buckets
        is also pairwise-independent, so each sliced table is
        bit-identical to evaluating its query alone.
        """
        graph = self.graph_for(network)
        checked = _screen_union_queries(graph, set_queries)
        union_sources, union_destinations = _union_order(
            [q for q, e in zip(set_queries, checked.errors) if e is None]
        )
        union_stats = SearchStats()
        paths: dict[tuple[NodeId, NodeId], PathResult] = {}
        if union_sources and union_destinations:
            paths = ch_many_to_many(
                graph,
                list(union_sources),
                list(union_destinations),
                stats=union_stats,
            )
        return _slice_union_tables(
            set_queries,
            checked.errors,
            lambda s, t: paths.get((s, t)),
            union_stats=union_stats,
            union_searches=len(union_sources) + len(union_destinations),
            pairs_computed=len(union_sources) * len(union_destinations),
        )
