"""Serialization of contracted graphs (pay preprocessing once per network).

Follows the plain-text idiom of :mod:`repro.network.io`: a human-readable
line format, integer node ids, exact round-tripping up to float repr.

```
# repro contracted graph v1
directed 0
counts <num_nodes> <num_edges>
rank <node> <rank>
edge <u> <v> <weight> <middle|->
```

``rank`` lines enumerate every node with its contraction order; ``edge``
lines enumerate every overlay edge exactly once with the bypassed middle
node for shortcuts (``-`` for original edges).  Loading rebuilds the
upward/downward split by comparing endpoint ranks, which is the only
structure the query algorithms need.  The ``counts`` record guards
against truncated files: a partial artifact would otherwise load as a
small, quietly wrong graph.
"""

from __future__ import annotations

import io as _io
import os
from typing import TextIO

from repro.exceptions import GraphError
from repro.search.ch.contract import ContractedGraph, ContractionStats

__all__ = [
    "write_contracted",
    "read_contracted",
    "dumps_contracted",
    "loads_contracted",
]


def write_contracted(
    graph: ContractedGraph, path: str | os.PathLike[str]
) -> None:
    """Write ``graph`` to ``path`` in the text format described above."""
    with open(path, "w", encoding="utf-8") as fh:
        _write(graph, fh)


def read_contracted(path: str | os.PathLike[str]) -> ContractedGraph:
    """Read a graph previously written by :func:`write_contracted`."""
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh)


def dumps_contracted(graph: ContractedGraph) -> str:
    """Serialize ``graph`` to a string."""
    buf = _io.StringIO()
    _write(graph, buf)
    return buf.getvalue()


def loads_contracted(text: str) -> ContractedGraph:
    """Parse a graph from a string produced by :func:`dumps_contracted`."""
    return _read(_io.StringIO(text))


def _write(graph: ContractedGraph, fh: TextIO) -> None:
    fh.write("# repro contracted graph v1\n")
    fh.write(f"directed {1 if graph.directed else 0}\n")
    num_edges = sum(1 for _ in graph.edges())
    fh.write(f"counts {graph.num_nodes} {num_edges}\n")
    for node in graph.nodes():
        fh.write(f"rank {node} {graph.rank_of(node)}\n")
    for u, v, w in graph.edges():
        mid = graph.middle(u, v)
        mid_field = "-" if mid is None else str(mid)
        fh.write(f"edge {u} {v} {w!r} {mid_field}\n")


def _read(fh: TextIO) -> ContractedGraph:
    directed: bool | None = None
    counts: tuple[int, int] | None = None
    rank: dict[int, int] = {}
    edges: list[tuple[int, int, float, int | None]] = []
    for line_no, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "directed":
                if directed is not None:
                    raise GraphError("duplicate 'directed' header")
                directed = bool(int(fields[1]))
            elif kind == "counts":
                if counts is not None:
                    raise GraphError("duplicate 'counts' header")
                counts = (int(fields[1]), int(fields[2]))
            elif kind == "rank":
                if directed is None:
                    raise GraphError("'rank' before 'directed' header")
                node = int(fields[1])
                if node in rank:
                    raise GraphError(f"duplicate rank for node {node}")
                rank[node] = int(fields[2])
            elif kind == "edge":
                mid = None if fields[4] == "-" else int(fields[4])
                edges.append((int(fields[1]), int(fields[2]), float(fields[3]), mid))
            else:
                raise GraphError(f"unknown record kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise GraphError(f"malformed line {line_no}: {line!r}") from exc
    if directed is None:
        raise GraphError("missing 'directed' header")
    if counts is None:
        raise GraphError("missing 'counts' header")
    if counts != (len(rank), len(edges)):
        raise GraphError(
            f"truncated or corrupt file: expected {counts[0]} nodes and "
            f"{counts[1]} edges, found {len(rank)} and {len(edges)}"
        )
    if set(rank.values()) != set(range(len(rank))):
        raise GraphError("contraction ranks are not a permutation")

    up_out: dict[int, dict[int, float]] = {node: {} for node in rank}
    up_in: dict[int, dict[int, float]] = {node: {} for node in rank}
    middles: dict[tuple[int, int], int] = {}
    for u, v, w, mid in edges:
        if u not in rank or v not in rank:
            raise GraphError(f"edge ({u}, {v}) references an unranked node")
        if rank[u] < rank[v]:
            up_out[u][v] = w
        else:
            up_in[v][u] = w
        if mid is not None:
            if mid not in rank:
                raise GraphError(f"shortcut ({u}, {v}) has unknown middle {mid}")
            middles[(u, v)] = mid
    stats = ContractionStats(
        original_nodes=len(rank),
        original_edges=len(edges) - len(middles),
        shortcuts_added=len(middles),
    )
    return ContractedGraph(
        rank=rank,
        up_out=up_out,
        up_in=up_in,
        middles=middles,
        directed=directed,
        stats=stats,
    )
