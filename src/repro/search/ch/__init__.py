"""Contraction Hierarchies: preprocessing-based search engine subsystem.

The four modules mirror the lifecycle of a CH deployment:

* :mod:`~repro.search.ch.contract` — one-time preprocessing producing an
  immutable :class:`ContractedGraph` (node ordering, witness searches,
  shortcut insertion);
* :mod:`~repro.search.ch.query` — bidirectional upward point-to-point
  queries with stall-on-demand and shortcut unpacking;
* :mod:`~repro.search.ch.manytomany` — the bucket-based batch algorithm
  answering a full |S| x |T| obfuscated query in one pass, exposed as the
  ``"ch"`` MSMD processor;
* :mod:`~repro.search.ch.persist` — save/load of contracted graphs so a
  server pays preprocessing once per road network.
"""

from repro.search.ch.contract import (
    ContractedGraph,
    ContractionStats,
    contract_network,
)
from repro.search.ch.query import ch_distance, ch_path, unpack_path
from repro.search.ch.manytomany import CHManyToManyProcessor, ch_many_to_many
from repro.search.ch.persist import (
    dumps_contracted,
    loads_contracted,
    read_contracted,
    write_contracted,
)

__all__ = [
    "ContractedGraph",
    "ContractionStats",
    "contract_network",
    "ch_path",
    "ch_distance",
    "unpack_path",
    "ch_many_to_many",
    "CHManyToManyProcessor",
    "read_contracted",
    "write_contracted",
    "dumps_contracted",
    "loads_contracted",
]
