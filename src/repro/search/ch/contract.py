"""Contraction Hierarchies preprocessing (Geisberger et al., WEA 2008).

The paper's server evaluates every obfuscated query with Dijkstra-family
searches whose cost is ``O(||s,t||^2)`` per Lemma 1 (see
:mod:`repro.search.cost_model`).  A production directions service amortizes
that cost with a one-time preprocessing step: nodes are *contracted* one by
one in ascending importance order, and whenever removing a node ``v`` would
break a shortest path ``u -> v -> x``, a *shortcut edge* ``(u, x)`` with the
combined weight is inserted.  The surviving structure — every original edge
and shortcut, bucketed by which endpoint ranks higher — supports
point-to-point queries that settle orders of magnitude fewer nodes than
Dijkstra (see :mod:`repro.search.ch.query`).

Node order is chosen lazily by the classic ``edge difference +
deleted neighbors`` priority:

* *edge difference* — shortcuts a contraction would add minus edges it
  removes, keeping the overlay graph sparse;
* *deleted neighbors* — how many of the node's neighbors are already
  contracted, spreading contraction uniformly across the map.

Shortcut necessity is decided by bounded *witness searches*: a Dijkstra in
the remaining overlay (excluding ``v``) proves a ``u -> x`` path no longer
than the would-be shortcut exists.  Witness searches are capped
(``witness_settled_limit``); a truncated search can only add a redundant
shortcut, never lose a shortest path, so correctness is unconditional.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from dataclasses import dataclass

from repro.network.graph import NodeId

__all__ = ["ContractionStats", "ContractedGraph", "contract_network"]


@dataclass(slots=True)
class ContractionStats:
    """Counters describing one preprocessing run."""

    original_nodes: int = 0
    original_edges: int = 0
    shortcuts_added: int = 0
    witness_searches: int = 0
    witness_settled: int = 0

    @property
    def overlay_edges(self) -> int:
        """Edges in the contracted overlay (originals + shortcuts)."""
        return self.original_edges + self.shortcuts_added


class ContractedGraph:
    """Immutable result of contracting a road network.

    The overlay graph (original edges plus shortcuts) is stored split by
    rank direction, which is exactly what the bidirectional upward query
    needs:

    * ``upward(v)`` — edges ``v -> x`` with ``rank(x) > rank(v)``
      (relaxed by the forward search, scanned by the backward stall test);
    * ``downward_in(v)`` — edges ``u -> v`` with ``rank(u) > rank(v)``
      (relaxed in reverse by the backward search, scanned by the forward
      stall test).

    ``middle(u, x)`` returns the contracted node a shortcut ``(u, x)``
    bypasses (``None`` for original edges), which drives recursive path
    unpacking in :func:`repro.search.ch.query.unpack_path`.

    Instances are produced by :func:`contract_network` or loaded from disk
    via :mod:`repro.search.ch.persist`; they never mutate.
    """

    def __init__(
        self,
        rank: dict[NodeId, int],
        up_out: dict[NodeId, dict[NodeId, float]],
        up_in: dict[NodeId, dict[NodeId, float]],
        middles: dict[tuple[NodeId, NodeId], NodeId],
        directed: bool,
        stats: ContractionStats | None = None,
    ) -> None:
        self._rank = rank
        self._up_out = up_out
        self._up_in = up_in
        self._middles = middles
        self._directed = directed
        self._stats = stats if stats is not None else ContractionStats()

    # -- structure ------------------------------------------------------
    @property
    def directed(self) -> bool:
        """Whether the source network was directed."""
        return self._directed

    @property
    def num_nodes(self) -> int:
        """Number of nodes (same as the source network)."""
        return len(self._rank)

    @property
    def num_shortcuts(self) -> int:
        """Shortcut edges in the overlay."""
        return len(self._middles)

    @property
    def stats(self) -> ContractionStats:
        """Preprocessing counters."""
        return self._stats

    def __contains__(self, node: NodeId) -> bool:
        return node in self._rank

    def __len__(self) -> int:
        return len(self._rank)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids."""
        return iter(self._rank)

    def rank_of(self, node: NodeId) -> int:
        """Contraction rank of ``node`` (0 = contracted first)."""
        return self._rank[node]

    def upward(self, node: NodeId) -> dict[NodeId, float]:
        """Overlay edges ``node -> x`` with ``rank(x) > rank(node)``."""
        return self._up_out.get(node, {})

    def downward_in(self, node: NodeId) -> dict[NodeId, float]:
        """Overlay edges ``u -> node`` with ``rank(u) > rank(node)``."""
        return self._up_in.get(node, {})

    def middle(self, u: NodeId, v: NodeId) -> NodeId | None:
        """Bypassed node of shortcut ``(u, v)``; ``None`` for originals."""
        return self._middles.get((u, v))

    def edges(self) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Every overlay edge ``(u, v, weight)`` exactly once."""
        for u, nbrs in self._up_out.items():
            yield from ((u, v, w) for v, w in nbrs.items())
        for v, nbrs in self._up_in.items():
            yield from ((u, v, w) for u, w in nbrs.items())

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"ContractedGraph({kind}, nodes={self.num_nodes}, "
            f"shortcuts={self.num_shortcuts})"
        )


def _witness_distances(
    out_adj: dict[NodeId, dict[NodeId, float]],
    source: NodeId,
    excluded: NodeId,
    targets: set[NodeId],
    cutoff: float,
    settle_limit: int,
    stats: ContractionStats,
) -> dict[NodeId, float]:
    """Bounded Dijkstra from ``source`` in the overlay minus ``excluded``.

    Stops when every target is settled, the frontier exceeds ``cutoff``,
    or ``settle_limit`` nodes were settled.  Returns settled distances for
    the targets found — an under-approximation is fine (it only means a
    redundant shortcut gets inserted).
    """
    stats.witness_searches += 1
    dist: dict[NodeId, float] = {source: 0.0}
    settled: dict[NodeId, float] = {}
    heap: list[tuple[float, int, NodeId]] = [(0.0, 0, source)]
    counter = 1
    remaining = len(targets)
    budget = settle_limit
    while heap and remaining and budget:
        d, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        if d > cutoff:
            break
        settled[node] = d
        budget -= 1
        stats.witness_settled += 1
        if node in targets:
            remaining -= 1
            if not remaining:
                break
        for nbr, w in out_adj[node].items():
            if nbr == excluded or nbr in settled:
                continue
            nd = d + w
            if nd < dist.get(nbr, float("inf")) and nd <= cutoff:
                dist[nbr] = nd
                heapq.heappush(heap, (nd, counter, nbr))
                counter += 1
    return {t: settled[t] for t in targets if t in settled}


def _shortcuts_for(
    node: NodeId,
    out_adj: dict[NodeId, dict[NodeId, float]],
    in_adj: dict[NodeId, dict[NodeId, float]],
    settle_limit: int,
    stats: ContractionStats,
) -> list[tuple[NodeId, NodeId, float]]:
    """Shortcuts required if ``node`` were contracted right now."""
    outs = out_adj[node]
    shortcuts: list[tuple[NodeId, NodeId, float]] = []
    for u, w1 in in_adj[node].items():
        targets = {x for x in outs if x != u}
        if not targets:
            continue
        cutoff = w1 + max(outs[x] for x in targets)
        witnesses = _witness_distances(
            out_adj, u, node, targets, cutoff, settle_limit, stats
        )
        for x in targets:
            via = w1 + outs[x]
            if witnesses.get(x, float("inf")) > via:
                shortcuts.append((u, x, via))
    return shortcuts


def contract_network(
    network,
    witness_settled_limit: int = 500,
) -> ContractedGraph:
    """Contract every node of ``network`` into a :class:`ContractedGraph`.

    Parameters
    ----------
    network:
        Any object with the :class:`~repro.network.graph.RoadNetwork` read
        interface (directed or undirected; a
        :class:`~repro.network.storage.PagedNetwork` works too — its page
        faults are charged once, here, instead of on every query).
    witness_settled_limit:
        Cap on nodes settled per witness search.  Query results are exact
        for any value; the cap only trades preprocessing effort against
        redundant shortcuts.  Counter-intuitively, starving witness
        searches (say, below ~100) is usually *slower* overall: missed
        witnesses insert unnecessary shortcuts, which densify the overlay
        and make every later witness search more expensive.

    Notes
    -----
    Runs the lazy-update simulation loop: the minimum-priority node is
    re-evaluated against the current overlay and contracted only if it is
    still minimal, otherwise re-queued with its fresh priority.
    """
    if witness_settled_limit < 1:
        raise ValueError("witness_settled_limit must be >= 1")
    stats = ContractionStats()
    order_index: dict[NodeId, int] = {}
    out_adj: dict[NodeId, dict[NodeId, float]] = {}
    in_adj: dict[NodeId, dict[NodeId, float]] = {}
    for i, node in enumerate(network.nodes()):
        order_index[node] = i
        out_adj[node] = dict(network.neighbors(node))
        in_adj[node] = {}
    edge_count = 0
    for u, nbrs in out_adj.items():
        for v, w in nbrs.items():
            in_adj[v][u] = w
            edge_count += 1
    stats.original_nodes = len(out_adj)
    stats.original_edges = edge_count

    # Working shortcut registry for edges still in the remaining overlay.
    live_middle: dict[tuple[NodeId, NodeId], NodeId] = {}
    deleted_neighbors: dict[NodeId, int] = dict.fromkeys(out_adj, 0)
    # A node's priority and simulated shortcut list stay valid until a
    # neighbor is contracted; the version stamp detects exactly that.
    version: dict[NodeId, int] = dict.fromkeys(out_adj, 0)

    def priority(node: NodeId, num_shortcuts: int) -> int:
        edge_difference = (
            num_shortcuts - len(out_adj[node]) - len(in_adj[node])
        )
        return edge_difference + deleted_neighbors[node]

    Entry = tuple[int, int, NodeId, int, list[tuple[NodeId, NodeId, float]]]
    heap: list[Entry] = []
    for node in out_adj:
        shortcuts = _shortcuts_for(
            node, out_adj, in_adj, witness_settled_limit, stats
        )
        heap.append(
            (priority(node, len(shortcuts)), order_index[node], node, 0, shortcuts)
        )
    heapq.heapify(heap)

    rank: dict[NodeId, int] = {}
    up_out: dict[NodeId, dict[NodeId, float]] = {}
    up_in: dict[NodeId, dict[NodeId, float]] = {}
    middles: dict[tuple[NodeId, NodeId], NodeId] = {}

    while heap:
        _, _, node, stamp, shortcuts = heapq.heappop(heap)
        if node in rank:
            continue  # stale duplicate entry from a lazy re-queue
        if stamp != version[node]:
            # The neighborhood changed since this entry was simulated.
            shortcuts = _shortcuts_for(
                node, out_adj, in_adj, witness_settled_limit, stats
            )
            current = priority(node, len(shortcuts))
            if heap and current > heap[0][0]:
                heapq.heappush(
                    heap,
                    (current, order_index[node], node, version[node], shortcuts),
                )
                continue

        # Freeze the node's remaining edges as its upward adjacency.
        rank[node] = len(rank)
        up_out[node] = dict(out_adj[node])
        up_in[node] = dict(in_adj[node])
        for x in out_adj[node]:
            mid = live_middle.pop((node, x), None)
            if mid is not None:
                middles[(node, x)] = mid
        for u in in_adj[node]:
            mid = live_middle.pop((u, node), None)
            if mid is not None:
                middles[(u, node)] = mid

        # Detach the node and patch the remaining overlay with shortcuts.
        neighbors = set(out_adj[node]) | set(in_adj[node])
        for x in out_adj[node]:
            del in_adj[x][node]
        for u in in_adj[node]:
            del out_adj[u][node]
        out_adj[node] = {}
        in_adj[node] = {}
        for u, x, w in shortcuts:
            if w < out_adj[u].get(x, float("inf")):
                out_adj[u][x] = w
                in_adj[x][u] = w
                live_middle[(u, x)] = node
                stats.shortcuts_added += 1
        for nbr in neighbors:
            deleted_neighbors[nbr] += 1
            version[nbr] += 1

    return ContractedGraph(
        rank=rank,
        up_out=up_out,
        up_in=up_in,
        middles=middles,
        directed=bool(getattr(network, "directed", False)),
        stats=stats,
    )
