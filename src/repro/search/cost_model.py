"""Analytic search-cost model (the paper's Lemma 1).

Section III-B estimates the cost of a point query ``Q(s, t)`` as
``O(||s,t||^2)`` — the spanning tree of a Dijkstra search covers a disc of
radius ``||s,t||`` around ``s``, and on a planar network with roughly
uniform node density the work is proportional to that disc's area.  Lemma 1
extends this to an obfuscated query:

    cost(Q(S, T)) = O( sum_{s in S} max_{t in T} ||s,t||^2 )

These estimators compute the model's prediction from network distances (or
their Euclidean proxies) so experiments E2 and E9 can overlay predicted
curves on measured settled-node counts.

The model describes *memoryless* Dijkstra-family searches.  Engines that
preprocess the network sidestep it: a Contraction Hierarchies query
(:mod:`repro.search.ch.query`) is bounded by the two upward search cones,
not by the ``||s,t||^2`` disc, so its settled-node count barely depends on
the query radius.  Measured on perturbed grids (long-radius queries,
``benchmarks/bench_search_engines.py``): 625-node grid — Dijkstra settles
~625, CH ~168; 10,000-node grid — Dijkstra ~6,300, CH ~450 (both cones,
stall-on-demand on).  The gap against this module's disc-area estimate is
exactly the amortized value of preprocessing, which is why experiment E2
reports ``ch_settled`` next to the Lemma 1 prediction and E6 tracks how
the CH speedup widens with network size.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import QueryError
from repro.network.graph import NodeId
from repro.search.dijkstra import dijkstra_to_many

__all__ = [
    "point_query_cost_estimate",
    "lemma1_cost_estimate",
    "naive_cost_estimate",
]


def point_query_cost_estimate(distance: float) -> float:
    """Model cost of a single path query with network distance ``distance``.

    Returned in "area units": callers fit a single proportionality constant
    (nodes per unit area) to convert it into settled-node predictions.
    """
    if distance < 0:
        raise ValueError("distance must be non-negative")
    return distance * distance


def lemma1_cost_estimate(
    network,
    sources: Sequence[NodeId],
    destinations: Sequence[NodeId],
    use_network_distance: bool = True,
) -> float:
    """Lemma 1 prediction ``sum_s max_t ||s,t||^2`` for ``Q(S, T)``.

    Parameters
    ----------
    use_network_distance:
        When ``True`` (default) ``||s,t||`` is the true shortest-path
        distance, obtained by one SSMD search per source (this is a
        modelling utility, not a fast path).  When ``False`` the Euclidean
        distance is used as a cheap lower-bound proxy.
    """
    if not sources or not destinations:
        raise QueryError("cost estimate needs non-empty S and T")
    total = 0.0
    for s in sources:
        if use_network_distance:
            paths = dijkstra_to_many(network, s, destinations)
            radius = max(paths[t].distance for t in destinations)
        else:
            radius = max(network.euclidean_distance(s, t) for t in destinations)
        total += point_query_cost_estimate(radius)
    return total


def naive_cost_estimate(
    network,
    sources: Sequence[NodeId],
    destinations: Sequence[NodeId],
    use_network_distance: bool = True,
) -> float:
    """Model cost of the naive strategy: ``sum_s sum_t ||s,t||^2``.

    The gap between this and :func:`lemma1_cost_estimate` is the predicted
    benefit of the paper's shared-tree processing.
    """
    if not sources or not destinations:
        raise QueryError("cost estimate needs non-empty S and T")
    total = 0.0
    for s in sources:
        if use_network_distance:
            paths = dijkstra_to_many(network, s, destinations)
            distances = [paths[t].distance for t in destinations]
        else:
            distances = [network.euclidean_distance(s, t) for t in destinations]
        total += sum(point_query_cost_estimate(d) for d in distances)
    return total
