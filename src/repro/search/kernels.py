"""Index-space search kernels over flat CSR arrays.

The dict-based engines (:mod:`repro.search.dijkstra`,
:mod:`repro.search.bidirectional`, :mod:`repro.search.ch.query`) spend
most of their time hashing node ids and unpacking ``dict.items()``
tuples.  The kernels here run the same algorithms over a
:class:`~repro.network.csr.CSRGraph` snapshot — integer node indices,
contiguous ``offsets``/``targets``/``weights`` arrays, ``heapq``
frontiers with lazy deletion — and return the same
:class:`~repro.search.result.PathResult` objects with identical
distances.

Three engines are registered from this module in
:data:`repro.search.ENGINES`:

* ``"dijkstra-csr"`` — point queries and shared SSMD trees
  (:class:`CSRSharedTreeProcessor`) on the flat forward adjacency;
* ``"bidirectional-csr"`` — per-pair bidirectional Dijkstra using the
  snapshot's reverse CSR view for the backward frontier;
* ``"ch-csr"`` — the Contraction Hierarchies upward/downward query
  loops and the bucket many-to-many algorithm over a
  :class:`CSRHierarchy` (flat-array view of a
  :class:`~repro.search.ch.contract.ContractedGraph`).

**Scratch buffers.**  Each query needs dist/parent/visited arrays sized
to the graph.  Allocating them per call would dominate small queries, so
:func:`scratch_for` pools one :class:`KernelScratch` per (thread, graph
size) and resets it in O(1) with a generation stamp: a slot is valid
only when its ``stamp`` equals the current generation, so "clearing"
the arrays is a single integer increment.  Because
:class:`~repro.service.serving.ConcurrentDispatcher` gives every worker
thread its own processor handle, the thread-local pool doubles as a
per-worker scratch pool — no locks on the hot path.

**Cost-counter parity.**  ``settled_nodes`` and
``max_settled_distance`` match the dict engines (same algorithm, same
stopping rules; settled counts can drift by a node or two only when
equal-weight ties change the pop order).  The secondary counters are
cheaper approximations: ``relaxed_edges`` counts every arc scanned from
a settled node (the dict engines skip arcs into already-settled
neighbors before counting), and ``heap_pushes`` can read higher because
the kernels re-push on improvement (lazy deletion) instead of paying
for an addressable heap's decrease-key — the faster strategy in
CPython.
"""

from __future__ import annotations

import threading
from array import array
from collections.abc import Iterable, Sequence
from heapq import heappop, heappush

from repro.exceptions import NoPathError, UnknownNodeError
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.graph import NodeId
from repro.obs import record as _obs_record
from repro.search.ch.contract import ContractedGraph, contract_network
from repro.search.ch.query import unpack_path
from repro.search.multi import (
    MSMDResult,
    PreprocessingProcessor,
    UnionPassResult,
    _screen_union_queries,
    _slice_union_tables,
    _union_order,
    _validate,
)
from repro.search.result import PathResult, SearchStats

try:  # pragma: no cover - numpy-less interpreters use the scalar paths
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "KernelScratch",
    "scratch_for",
    "overlay_sweep",
    "csr_dijkstra_path",
    "csr_dijkstra_to_many",
    "csr_bidirectional_path",
    "CSRHierarchy",
    "ch_csr_hierarchy",
    "csr_ch_path",
    "csr_ch_many_to_many",
    "CSRSharedTreeProcessor",
    "CSRBidirectionalPairwiseProcessor",
    "CSRCHManyToManyProcessor",
]

_INF = float("inf")


class KernelScratch:
    """Preallocated work arrays for one thread and one graph size.

    Two full banks (``*_f`` forward, ``*_b`` backward) so the
    bidirectional and CH kernels run both frontiers without aliasing.
    ``stamp`` marks slots whose ``dist``/``parent`` are valid for the
    current generation; ``done`` marks settled slots.  :meth:`bump`
    starts a fresh query by invalidating everything in O(1).
    """

    __slots__ = (
        "size",
        "generation",
        "dist_f",
        "parent_f",
        "stamp_f",
        "done_f",
        "dist_b",
        "parent_b",
        "stamp_b",
        "done_b",
    )

    def __init__(self, size: int) -> None:
        self.size = size
        self.generation = 0
        self.dist_f = [_INF] * size
        self.parent_f = [-1] * size
        self.stamp_f = [0] * size
        self.done_f = [0] * size
        self.dist_b = [_INF] * size
        self.parent_b = [-1] * size
        self.stamp_b = [0] * size
        self.done_b = [0] * size

    def bump(self) -> int:
        """Start a new query; returns the fresh generation stamp."""
        self.generation += 1
        return self.generation


_TLS = threading.local()


def scratch_for(size: int) -> KernelScratch:
    """This thread's pooled :class:`KernelScratch` for graphs of ``size``.

    One scratch per (thread, size); dispatcher worker threads therefore
    each own their buffers and never contend.
    """
    pool = getattr(_TLS, "pool", None)
    if pool is None:
        pool = _TLS.pool = {}
    scratch = pool.get(size)
    if scratch is None:
        scratch = pool[size] = KernelScratch(size)
    return scratch


# ----------------------------------------------------------------------
# Overlay sweep (the partition-overlay engine's boundary-phase kernel)
# ----------------------------------------------------------------------
def overlay_sweep(
    offsets: Sequence[int],
    targets: Sequence[int],
    weights: Sequence[float],
    kinds: Sequence[int],
    seeds: Iterable[tuple[int, float]],
    num_nodes: int,
    target_offsets: dict[int, float] | None = None,
    best_bound: float = _INF,
    stats: SearchStats | None = None,
    goal: tuple[float, float] | None = None,
    xs: Sequence[float] | None = None,
    ys: Sequence[float] | None = None,
) -> tuple[float, int, list[float], list[int], list[int], bytearray]:
    """Multi-source (optionally goal-directed) sweep over a flat overlay.

    The boundary phase of the two-phase partition-overlay query
    (:class:`repro.search.overlay.OverlayGraph`): ``offsets``/``targets``/
    ``weights`` is the CSR adjacency over boundary-node indices (clique
    shortcuts plus cut arcs), ``kinds[e]`` labels arc ``e`` with the cell
    whose clique produced it (``-1`` for a cut arc) and is recorded per
    tree arc for path unpacking.

    Parameters
    ----------
    seeds:
        ``(boundary index, offset)`` pairs — the source-cell boundary
        nodes with their local distances from the true source.
    target_offsets:
        When given, a ``{boundary index: local distance to target}``
        map: the sweep tracks ``best = min(dist[b] + offset[b])`` and
        stops early once the frontier cannot improve it (point-query
        mode).  ``None`` settles everything reachable (MSMD mode).
    best_bound:
        Initial upper bound on the answer (e.g. the intra-cell direct
        candidate when source and target share a cell).
    goal, xs, ys:
        When ``goal=(x, y)`` and the boundary coordinate arrays are
        given (point-query mode only), the sweep runs A* keyed by
        ``dist + straight-line-to-goal``.  The caller must guarantee
        the lower bound is admissible — every overlay arc weight and
        every target offset at least its endpoints' Euclidean distance
        (true whenever all edge weights are >= their Euclidean length;
        see :attr:`repro.search.overlay.OverlayGraph.metric`).  The
        heuristic is consistent, so results are identical to the plain
        sweep — only fewer nodes settle.

    Returns
    -------
    (best, meet, dist, parent, via, done)
        ``best``/``meet`` are the best offset candidate and its
        boundary index (``-1`` when no candidate beat ``best_bound``);
        ``dist``/``parent``/``via`` are the tree arrays (``via[v]`` is
        the kind label of the tree arc into ``v``); ``done`` flags
        settled indices.
    """
    if stats is None:
        stats = SearchStats()
    from math import hypot

    dist = [_INF] * num_nodes
    parent = [-1] * num_nodes
    via = [-1] * num_nodes
    done = bytearray(num_nodes)
    heap: list[tuple[float, float, int]] = []
    pop, push = heappop, heappush
    pushes = 0
    hmemo: list[float] | None = None
    gx = gy = 0.0
    if goal is not None and target_offsets is not None:
        gx, gy = goal
        hmemo = [-1.0] * num_nodes
    for i, offset in seeds:
        if offset < dist[i]:
            dist[i] = offset
            if hmemo is not None:
                h = hypot(xs[i] - gx, ys[i] - gy)
                hmemo[i] = h
                push(heap, (offset + h, offset, i))
            else:
                push(heap, (offset, offset, i))
            pushes += 1
    best = best_bound
    meet = -1
    settled = relaxed = 0
    maxd = 0.0
    while heap:
        key, d, u = pop(heap)
        if done[u]:
            continue
        if target_offsets is not None and key >= best:
            break
        done[u] = 1
        settled += 1
        if d > maxd:
            maxd = d
        if target_offsets is not None:
            offset = target_offsets.get(u)
            if offset is not None:
                candidate = d + offset
                if candidate < best:
                    best = candidate
                    meet = u
        start = offsets[u]
        end = offsets[u + 1]
        relaxed += end - start
        if hmemo is None:
            for e in range(start, end):
                v = targets[e]
                nd = d + weights[e]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    via[v] = kinds[e]
                    push(heap, (nd, nd, v))
                    pushes += 1
        else:
            for e in range(start, end):
                v = targets[e]
                nd = d + weights[e]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    via[v] = kinds[e]
                    h = hmemo[v]
                    if h < 0.0:
                        h = hypot(xs[v] - gx, ys[v] - gy)
                        hmemo[v] = h
                    push(heap, (nd + h, nd, v))
                    pushes += 1
    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    rec = _obs_record.RECORDER
    if rec is not None:
        rec.record("overlay_sweep", settled, relaxed, pushes)
    return best, meet, dist, parent, via, done


def nested_overlay_sweep(
    level1: tuple,
    top: tuple,
    active: bytearray,
    seeds: Iterable[tuple[int, float]],
    num_nodes: int,
    target_offsets: dict[int, float] | None = None,
    best_bound: float = _INF,
    stats: SearchStats | None = None,
    goal: tuple[float, float] | None = None,
    xs: Sequence[float] | None = None,
    ys: Sequence[float] | None = None,
    top_np: tuple | None = None,
    xy_np: tuple | None = None,
) -> tuple[float, int, Sequence[float], list[int], list[int], bytearray]:
    """Two-level mixed sweep over a nested overlay (CRP-style).

    The boundary phase of the nested overlay
    (:class:`repro.search.overlay.NestedOverlayGraph`): the same
    multi-source, optionally goal-directed Dijkstra as
    :func:`overlay_sweep`, except each settled node relaxes one of *two*
    CSR arc sets chosen by supercell membership.  ``active[u]`` flags
    boundary nodes inside the query's source/target supercells — those
    relax the full ``level1`` overlay adjacency (clique shortcuts + cut
    arcs); every other node relaxes the far sparser ``top`` adjacency
    (supercell clique shortcuts + cross-supercell arcs), so the sweep
    settles O(boundary-of-boundary) nodes outside the endpoint regions.
    Exactness is the standard CRP argument: between consecutive
    super-boundary visits a shortest path stays inside one supercell,
    and the supercell cliques carry exactly those restricted distances.

    Parameters
    ----------
    level1, top:
        Each an ``(offsets, targets, weights, kinds)`` CSR quadruple
        over boundary-node indices.  ``top`` kinds ``<= -2`` encode the
        owning supercell as ``-2 - supercell`` (expanded by the nested
        stitcher); cut/clique kinds pass through from ``level1``.
    active:
        Per-node flags selecting the ``level1`` arc set.
    seeds, num_nodes, target_offsets, best_bound, goal, xs, ys:
        As :func:`overlay_sweep` (same admissibility contract).
    top_np:
        Optional ``(targets, weights)`` numpy mirrors of the ``top``
        arrays.  When given (and numpy imported), the dense top-level
        relaxations run as whole-slice array compares — one C pass finds
        the improving arcs, and only those re-enter the Python push
        loop.  Distances are unchanged: the array ops perform the same
        IEEE float64 adds and compares as the scalar loop.
    xy_np:
        Optional ``(xs, ys)`` numpy mirrors of the node coordinates,
        required for the vectorized path when ``goal`` is set (the A*
        heuristic is then precomputed for all nodes in one
        ``np.hypot``).

    Returns
    -------
    (best, meet, dist, parent, via, done)
        As :func:`overlay_sweep` (``dist`` is a numpy array on the
        vectorized path, a list otherwise — reads yield the same
        float64 values either way).
    """
    if stats is None:
        stats = SearchStats()
    from math import hypot

    o1, t1, w1, k1 = level1
    o2, t2, w2, k2 = top
    vec = None
    if _np is not None and top_np is not None:
        if goal is None or target_offsets is None or xy_np is not None:
            vec = top_np
    if vec is not None:
        tt, tw = vec
        # One buffer, two views: the heap loop indexes the C-double
        # array (list-speed scalar reads), the relax step compares
        # whole slices through the zero-copy numpy view.
        dist = array("d", (_INF,)) * num_nodes
        dist_np = _np.frombuffer(dist)
    else:
        tt = tw = dist_np = None
        dist = [_INF] * num_nodes
    parent = [-1] * num_nodes
    via = [-1] * num_nodes
    done = bytearray(num_nodes)
    heap: list[tuple[float, float, int]] = []
    pop, push = heappop, heappush
    pushes = 0
    hmemo: list[float] | None = None
    harr: list[float] | None = None
    gx = gy = 0.0
    if goal is not None and target_offsets is not None:
        gx, gy = goal
        if vec is not None:
            bx, by = xy_np
            harr = _np.hypot(bx - gx, by - gy).tolist()
        else:
            hmemo = [-1.0] * num_nodes
    for i, offset in seeds:
        if offset < dist[i]:
            dist[i] = offset
            if harr is not None:
                push(heap, (offset + harr[i], offset, i))
            elif hmemo is not None:
                h = hypot(xs[i] - gx, ys[i] - gy)
                hmemo[i] = h
                push(heap, (offset + h, offset, i))
            else:
                push(heap, (offset, offset, i))
            pushes += 1
    best = best_bound
    meet = -1
    settled = relaxed = 0
    maxd = 0.0
    while heap:
        key, d, u = pop(heap)
        if done[u]:
            continue
        if target_offsets is not None and key >= best:
            break
        done[u] = 1
        settled += 1
        if d > maxd:
            maxd = d
        if target_offsets is not None:
            offset = target_offsets.get(u)
            if offset is not None:
                candidate = d + offset
                if candidate < best:
                    best = candidate
                    meet = u
        if vec is not None and not active[u]:
            start = o2[u]
            end = o2[u + 1]
            relaxed += end - start
            if end > start:
                nds = d + tw[start:end]
                sel = (nds < dist_np[tt[start:end]]).nonzero()[0]
                for j in sel.tolist():
                    e = start + j
                    v = t2[e]
                    nd = nds[j]
                    if nd < dist[v]:
                        dist[v] = nd
                        parent[v] = u
                        via[v] = k2[e]
                        nd = float(nd)
                        if harr is not None:
                            push(heap, (nd + harr[v], nd, v))
                        else:
                            push(heap, (nd, nd, v))
                        pushes += 1
            continue
        if active[u]:
            offsets, targets, weights, kinds = o1, t1, w1, k1
        else:
            offsets, targets, weights, kinds = o2, t2, w2, k2
        start = offsets[u]
        end = offsets[u + 1]
        relaxed += end - start
        if harr is not None:
            for e in range(start, end):
                v = targets[e]
                nd = d + weights[e]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    via[v] = kinds[e]
                    push(heap, (nd + harr[v], nd, v))
                    pushes += 1
        elif hmemo is None:
            for e in range(start, end):
                v = targets[e]
                nd = d + weights[e]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    via[v] = kinds[e]
                    push(heap, (nd, nd, v))
                    pushes += 1
        else:
            for e in range(start, end):
                v = targets[e]
                nd = d + weights[e]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    via[v] = kinds[e]
                    h = hmemo[v]
                    if h < 0.0:
                        h = hypot(xs[v] - gx, ys[v] - gy)
                        hmemo[v] = h
                    push(heap, (nd + h, nd, v))
                    pushes += 1
    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    rec = _obs_record.RECORDER
    if rec is not None:
        rec.record("nested_sweep", settled, relaxed, pushes)
    return best, meet, dist, parent, via, done


# ----------------------------------------------------------------------
# Dijkstra kernels
# ----------------------------------------------------------------------
def _trivial(node: NodeId) -> PathResult:
    return PathResult(node, node, (node,), 0.0)


def _path_from_parents(
    csr: CSRGraph, parent: list[int], s: int, t: int, distance: float
) -> PathResult:
    node_ids = csr.node_ids
    sequence = [t]
    node = t
    while node != s:
        node = parent[node]
        sequence.append(node)
    sequence.reverse()
    return PathResult(
        source=node_ids[s],
        destination=node_ids[t],
        nodes=tuple(node_ids[i] for i in sequence),
        distance=distance,
    )


def csr_dijkstra_path(
    network,
    source: NodeId,
    destination: NodeId,
    csr: CSRGraph | None = None,
    stats: SearchStats | None = None,
) -> PathResult:
    """Point-to-point Dijkstra on the CSR kernel.

    Same contract (and distances) as
    :func:`repro.search.dijkstra.dijkstra_path`; ``csr`` lets callers
    pass a prebuilt snapshot, otherwise the memoized
    :func:`~repro.network.csr.csr_snapshot` is used.

    Raises
    ------
    NoPathError
        If the destination is unreachable.
    UnknownNodeError
        If either endpoint is missing from the network.
    """
    if csr is None:
        csr = csr_snapshot(network)
    s = csr.index(source)
    t = csr.index(destination)
    if stats is None:
        stats = SearchStats()
    if s == t:
        return _trivial(source)

    offsets, heads, wts = csr.kernel_view()
    scratch = scratch_for(csr.num_nodes)
    dist, parent = scratch.dist_f, scratch.parent_f
    stamp, done = scratch.stamp_f, scratch.done_f
    gen = scratch.bump()
    dist[s] = 0.0
    stamp[s] = gen
    parent[s] = -1
    heap = [(0.0, s)]
    pop, push = heappop, heappush
    settled = relaxed = 0
    pushes = 1
    maxd = 0.0
    found = False
    while heap:
        d, u = pop(heap)
        if done[u] == gen:
            continue
        done[u] = gen
        settled += 1
        maxd = d  # pops are non-decreasing
        if u == t:
            found = True
            break
        start = offsets[u]
        end = offsets[u + 1]
        relaxed += end - start
        for e in range(start, end):
            v = heads[e]
            nd = d + wts[e]
            if stamp[v] != gen:
                stamp[v] = gen
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                pushes += 1
            elif nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                pushes += 1
    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    rec = _obs_record.RECORDER
    if rec is not None:
        rec.record("csr_dijkstra", settled, relaxed, pushes)
    if not found:
        raise NoPathError(source, destination)
    return _path_from_parents(csr, parent, s, t, dist[t])


def csr_dijkstra_to_many(
    network,
    source: NodeId,
    destinations: Iterable[NodeId],
    csr: CSRGraph | None = None,
    stats: SearchStats | None = None,
    strict: bool = True,
) -> dict[NodeId, PathResult]:
    """One shared SSMD tree on the CSR kernel (Lemma 1 cost).

    Same contract as :func:`repro.search.dijkstra.dijkstra_to_many`:
    grows a single spanning tree from ``source`` until every destination
    settles; with ``strict`` an unreachable destination raises
    :class:`NoPathError`, otherwise it is omitted.
    """
    if csr is None:
        csr = csr_snapshot(network)
    s = csr.index(source)
    target_ids = set(destinations)
    remaining = {csr.index(t) for t in target_ids}
    if stats is None:
        stats = SearchStats()

    results: dict[NodeId, PathResult] = {}
    if s in remaining:
        results[source] = _trivial(source)
        remaining.discard(s)

    offsets, heads, wts = csr.kernel_view()
    scratch = scratch_for(csr.num_nodes)
    dist, parent = scratch.dist_f, scratch.parent_f
    stamp, done = scratch.stamp_f, scratch.done_f
    gen = scratch.bump()
    dist[s] = 0.0
    stamp[s] = gen
    parent[s] = -1
    heap = [(0.0, s)]
    pop, push = heappop, heappush
    settled = relaxed = 0
    pushes = 1
    maxd = 0.0
    reached: dict[int, float] = {}
    while heap and remaining:
        d, u = pop(heap)
        if done[u] == gen:
            continue
        done[u] = gen
        settled += 1
        maxd = d  # pops are non-decreasing
        if u in remaining:
            remaining.discard(u)
            reached[u] = d
            if not remaining:
                break
        start = offsets[u]
        end = offsets[u + 1]
        relaxed += end - start
        for e in range(start, end):
            v = heads[e]
            nd = d + wts[e]
            if stamp[v] != gen:
                stamp[v] = gen
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                pushes += 1
            elif nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                pushes += 1
    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    rec = _obs_record.RECORDER
    if rec is not None:
        rec.record("csr_dijkstra_to_many", settled, relaxed, pushes)
    if strict and remaining:
        missing = csr.node_ids[next(iter(remaining))]
        raise NoPathError(source, missing)
    for t_idx, d in reached.items():
        results[csr.node_ids[t_idx]] = _path_from_parents(csr, parent, s, t_idx, d)
    return results


def csr_bidirectional_path(
    network,
    source: NodeId,
    destination: NodeId,
    csr: CSRGraph | None = None,
    stats: SearchStats | None = None,
) -> PathResult:
    """Bidirectional Dijkstra on the CSR kernel.

    The backward frontier expands over the snapshot's reverse CSR view
    (aliasing the forward arrays on undirected networks), with the
    classic ``min_f + min_b >= best`` stopping rule — same distances as
    :func:`repro.search.bidirectional.bidirectional_dijkstra_path`.
    """
    if csr is None:
        csr = csr_snapshot(network)
    s = csr.index(source)
    t = csr.index(destination)
    if stats is None:
        stats = SearchStats()
    if s == t:
        return _trivial(source)

    fwd_view = csr.kernel_view()
    bwd_view = csr.reverse_kernel_view()
    offs = (fwd_view[0], bwd_view[0])
    heads = (fwd_view[1], bwd_view[1])
    wts = (fwd_view[2], bwd_view[2])
    scratch = scratch_for(csr.num_nodes)
    dists = (scratch.dist_f, scratch.dist_b)
    parents = (scratch.parent_f, scratch.parent_b)
    stamps = (scratch.stamp_f, scratch.stamp_b)
    dones = (scratch.done_f, scratch.done_b)
    gen = scratch.bump()
    for side, start in ((0, s), (1, t)):
        dists[side][start] = 0.0
        stamps[side][start] = gen
        parents[side][start] = -1
    heaps: tuple[list, list] = ([(0.0, s)], [(0.0, t)])
    pop, push = heappop, heappush
    settled = relaxed = 0
    pushes = 2
    maxd = 0.0
    best = _INF
    meet = -1

    while heaps[0] and heaps[1]:
        for heap, done in zip(heaps, dones):
            while heap and done[heap[0][1]] == gen:
                pop(heap)
        if not heaps[0] or not heaps[1]:
            break
        min0 = heaps[0][0][0]
        min1 = heaps[1][0][0]
        if min0 + min1 >= best:
            break
        side = 0 if min0 <= min1 else 1
        d, u = pop(heaps[side])
        my_done = dones[side]
        my_done[u] = gen
        settled += 1
        if d > maxd:
            maxd = d
        my_dist, my_parent, my_stamp = dists[side], parents[side], stamps[side]
        other_dist, other_stamp = dists[1 - side], stamps[1 - side]
        my_heap = heaps[side]
        off, head, wt = offs[side], heads[side], wts[side]
        start = off[u]
        end = off[u + 1]
        relaxed += end - start
        for e in range(start, end):
            v = head[e]
            nd = d + wt[e]
            if my_stamp[v] != gen:
                my_stamp[v] = gen
                my_dist[v] = nd
                my_parent[v] = u
                push(my_heap, (nd, v))
                pushes += 1
            elif nd < my_dist[v]:
                my_dist[v] = nd
                my_parent[v] = u
                push(my_heap, (nd, v))
                pushes += 1
            if other_stamp[v] == gen:
                total = my_dist[v] + other_dist[v]
                if total < best:
                    best = total
                    meet = v

    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    rec = _obs_record.RECORDER
    if rec is not None:
        rec.record("csr_bidirectional", settled, relaxed, pushes)
    if meet < 0:
        raise NoPathError(source, destination)

    sequence = [meet]
    node = meet
    parent_f, parent_b = parents
    while node != s:
        node = parent_f[node]
        sequence.append(node)
    sequence.reverse()
    node = meet
    while node != t:
        node = parent_b[node]
        sequence.append(node)
    node_ids = csr.node_ids
    return PathResult(
        source=source,
        destination=destination,
        nodes=tuple(node_ids[i] for i in sequence),
        distance=best,
    )


# ----------------------------------------------------------------------
# Contraction Hierarchies kernels
# ----------------------------------------------------------------------
class CSRHierarchy:
    """Flat-array view of a contracted graph for the CH kernels.

    Splits the overlay into two CSR adjacencies over dense indices:

    * ``up_*`` — edges ``v -> x`` with ``rank(x) > rank(v)`` (relaxed by
      the forward search, scanned by the backward stall test);
    * ``down_*`` — edges ``u -> v`` with ``rank(u) > rank(v)`` stored at
      ``v`` (relaxed in reverse by the backward search, scanned by the
      forward stall test).

    The wrapped :class:`~repro.search.ch.contract.ContractedGraph` is
    kept for shortcut unpacking (``middle``) and disk persistence; the
    query loops themselves only touch the arrays.  Arrays are plain
    lists in CSR layout — CPython indexes preboxed list slots faster
    than :mod:`array` buffers, and the overlay is never exported as a
    buffer (persistence goes through the wrapped graph).
    """

    __slots__ = (
        "contracted",
        "node_ids",
        "index_of",
        "up_offsets",
        "up_targets",
        "up_weights",
        "down_offsets",
        "down_targets",
        "down_weights",
    )

    def __init__(self, contracted: ContractedGraph) -> None:
        self.contracted = contracted
        node_ids = tuple(contracted.nodes())
        index_of = {node: i for i, node in enumerate(node_ids)}
        self.node_ids = node_ids
        self.index_of = index_of
        for attr, adjacency in (
            ("up", contracted.upward),
            ("down", contracted.downward_in),
        ):
            offsets = [0]
            targets: list[int] = []
            weights: list[float] = []
            for node in node_ids:
                for nbr, w in adjacency(node).items():
                    targets.append(index_of[nbr])
                    weights.append(w)
                offsets.append(len(targets))
            setattr(self, f"{attr}_offsets", offsets)
            setattr(self, f"{attr}_targets", targets)
            setattr(self, f"{attr}_weights", weights)

    @property
    def num_nodes(self) -> int:
        """Number of nodes (same as the contracted graph)."""
        return len(self.node_ids)

    def __contains__(self, node: NodeId) -> bool:
        """Whether ``node`` is part of the hierarchy."""
        return node in self.index_of

    def index(self, node: NodeId) -> int:
        """Dense index of ``node``, raising :class:`UnknownNodeError`."""
        try:
            return self.index_of[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def __repr__(self) -> str:
        return (
            f"CSRHierarchy(nodes={self.num_nodes}, "
            f"shortcuts={self.contracted.num_shortcuts})"
        )


def ch_csr_hierarchy(network, witness_settled_limit: int = 500) -> CSRHierarchy:
    """Contract ``network`` and freeze the overlay into a :class:`CSRHierarchy`.

    The ``"ch-csr"`` engine's ``prepare`` hook: contraction cost is
    identical to the ``"ch"`` engine (same
    :func:`~repro.search.ch.contract.contract_network` run); the extra
    flattening pass is linear in overlay size.
    """
    return CSRHierarchy(
        contract_network(network, witness_settled_limit=witness_settled_limit)
    )


def csr_ch_path(
    hierarchy: CSRHierarchy,
    source: NodeId,
    destination: NodeId,
    stats: SearchStats | None = None,
) -> PathResult:
    """CH point query on flat arrays (stall-on-demand, full unpacking).

    Same distances and path contract as
    :func:`repro.search.ch.query.ch_path`.
    """
    s = hierarchy.index(source)
    t = hierarchy.index(destination)
    if stats is None:
        stats = SearchStats()
    if s == t:
        return _trivial(source)

    relax_offs = (hierarchy.up_offsets, hierarchy.down_offsets)
    relax_heads = (hierarchy.up_targets, hierarchy.down_targets)
    relax_wts = (hierarchy.up_weights, hierarchy.down_weights)
    stall_offs = (hierarchy.down_offsets, hierarchy.up_offsets)
    stall_heads = (hierarchy.down_targets, hierarchy.up_targets)
    stall_wts = (hierarchy.down_weights, hierarchy.up_weights)

    scratch = scratch_for(hierarchy.num_nodes)
    dists = (scratch.dist_f, scratch.dist_b)
    parents = (scratch.parent_f, scratch.parent_b)
    stamps = (scratch.stamp_f, scratch.stamp_b)
    dones = (scratch.done_f, scratch.done_b)
    gen = scratch.bump()
    for side, start in ((0, s), (1, t)):
        dists[side][start] = 0.0
        stamps[side][start] = gen
        parents[side][start] = -1
    heaps: tuple[list, list] = ([(0.0, s)], [(0.0, t)])
    pop, push = heappop, heappush
    settled = relaxed = 0
    pushes = 2
    maxd = 0.0
    best = _INF
    meet = -1

    while True:
        for heap, done in zip(heaps, dones):
            while heap and done[heap[0][1]] == gen:
                pop(heap)
        min0 = heaps[0][0][0] if heaps[0] else _INF
        min1 = heaps[1][0][0] if heaps[1] else _INF
        if min0 < best and (min0 <= min1 or min1 >= best):
            side = 0
        elif min1 < best:
            side = 1
        else:
            break
        d, u = pop(heaps[side])
        my_done = dones[side]
        my_done[u] = gen
        settled += 1
        if d > maxd:
            maxd = d

        if stamps[1 - side][u] == gen:
            total = d + dists[1 - side][u]
            if total < best:
                best = total
                meet = u

        # Stall-on-demand: beaten via a higher-ranked settled node.
        my_dist = dists[side]
        s_off, s_head, s_wt = stall_offs[side], stall_heads[side], stall_wts[side]
        stalled = False
        for e in range(s_off[u], s_off[u + 1]):
            h = s_head[e]
            if my_done[h] == gen and my_dist[h] + s_wt[e] < d:
                stalled = True
                break
        if stalled:
            continue

        my_parent, my_stamp = parents[side], stamps[side]
        my_heap = heaps[side]
        r_off, r_head, r_wt = relax_offs[side], relax_heads[side], relax_wts[side]
        start = r_off[u]
        end = r_off[u + 1]
        relaxed += end - start
        for e in range(start, end):
            v = r_head[e]
            nd = d + r_wt[e]
            if my_stamp[v] != gen:
                my_stamp[v] = gen
                my_dist[v] = nd
                my_parent[v] = u
                push(my_heap, (nd, v))
                pushes += 1
            elif nd < my_dist[v]:
                my_dist[v] = nd
                my_parent[v] = u
                push(my_heap, (nd, v))
                pushes += 1

    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    rec = _obs_record.RECORDER
    if rec is not None:
        rec.record("csr_ch", settled, relaxed, pushes)
    if meet < 0:
        raise NoPathError(source, destination)

    node_ids = hierarchy.node_ids
    overlay = [meet]
    node = meet
    parent_f, parent_b = parents
    while node != s:
        node = parent_f[node]
        overlay.append(node)
    overlay.reverse()
    node = meet
    while node != t:
        node = parent_b[node]
        overlay.append(node)
    overlay_ids = [node_ids[i] for i in overlay]
    return PathResult(
        source=source,
        destination=destination,
        nodes=tuple(unpack_path(hierarchy.contracted, overlay_ids)),
        distance=best,
    )


def _csr_upward_sweep(
    hierarchy: CSRHierarchy,
    start: int,
    forward: bool,
    scratch: KernelScratch,
    stats: SearchStats,
) -> tuple[dict[int, float], dict[int, int], set[int]]:
    """Exhaustive upward sweep in index space (the many-to-many primitive).

    Mirrors :func:`repro.search.ch.query._upward_sweep`; returns
    ``(settled {idx: dist}, predecessors {idx: idx}, stalled idx set)``
    as small dicts so results survive scratch reuse by later sweeps.
    """
    if forward:
        r_off, r_head, r_wt = (
            hierarchy.up_offsets,
            hierarchy.up_targets,
            hierarchy.up_weights,
        )
        s_off, s_head, s_wt = (
            hierarchy.down_offsets,
            hierarchy.down_targets,
            hierarchy.down_weights,
        )
    else:
        r_off, r_head, r_wt = (
            hierarchy.down_offsets,
            hierarchy.down_targets,
            hierarchy.down_weights,
        )
        s_off, s_head, s_wt = (
            hierarchy.up_offsets,
            hierarchy.up_targets,
            hierarchy.up_weights,
        )
    dist, parent = scratch.dist_f, scratch.parent_f
    stamp, done = scratch.stamp_f, scratch.done_f
    gen = scratch.bump()
    dist[start] = 0.0
    stamp[start] = gen
    parent[start] = -1
    heap = [(0.0, start)]
    pop, push = heappop, heappush
    settled_map: dict[int, float] = {}
    stalled: set[int] = set()
    settled = relaxed = 0
    pushes = 1
    maxd = 0.0
    while heap:
        d, u = pop(heap)
        if done[u] == gen:
            continue
        done[u] = gen
        settled_map[u] = d
        settled += 1
        if d > maxd:
            maxd = d
        is_stalled = False
        for e in range(s_off[u], s_off[u + 1]):
            h = s_head[e]
            if done[h] == gen and dist[h] + s_wt[e] < d:
                is_stalled = True
                break
        if is_stalled:
            stalled.add(u)
            continue
        start = r_off[u]
        end = r_off[u + 1]
        relaxed += end - start
        for e in range(start, end):
            v = r_head[e]
            nd = d + r_wt[e]
            if stamp[v] != gen:
                stamp[v] = gen
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                pushes += 1
            elif nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                pushes += 1
    stats.settled_nodes += settled
    stats.relaxed_edges += relaxed
    stats.heap_pushes += pushes
    if maxd > stats.max_settled_distance:
        stats.max_settled_distance = maxd
    rec = _obs_record.RECORDER
    if rec is not None:
        rec.record("csr_ch_upward", settled, relaxed, pushes)
    preds = {i: parent[i] for i in settled_map}
    return settled_map, preds, stalled


def csr_ch_many_to_many(
    hierarchy: CSRHierarchy,
    sources: Sequence[NodeId],
    destinations: Sequence[NodeId],
    stats: SearchStats | None = None,
) -> dict[tuple[NodeId, NodeId], PathResult]:
    """Bucket-based many-to-many CH on flat arrays.

    Same contract (and distances) as
    :func:`repro.search.ch.manytomany.ch_many_to_many`: one backward
    sweep per destination fills buckets, one forward sweep per source
    scans them; unreachable pairs are omitted.
    """
    if stats is None:
        stats = SearchStats()
    src_idx = [hierarchy.index(s) for s in sources]
    dst_idx = [hierarchy.index(t) for t in destinations]
    scratch = scratch_for(hierarchy.num_nodes)

    buckets: dict[int, list[tuple[int, float]]] = {}
    backward_preds: list[dict[int, int]] = []
    for j, t in enumerate(dst_idx):
        settled, preds, stalled = _csr_upward_sweep(
            hierarchy, t, forward=False, scratch=scratch, stats=stats
        )
        backward_preds.append(preds)
        for v, d in settled.items():
            if v in stalled:
                continue
            buckets.setdefault(v, []).append((j, d))

    best: dict[tuple[int, int], tuple[float, int]] = {}
    forward_preds: list[dict[int, int]] = []
    for i, s in enumerate(src_idx):
        settled, preds, stalled = _csr_upward_sweep(
            hierarchy, s, forward=True, scratch=scratch, stats=stats
        )
        forward_preds.append(preds)
        for v, df in settled.items():
            if v in stalled:
                continue
            bucket = buckets.get(v)
            if not bucket:
                continue
            for j, db in bucket:
                total = df + db
                entry = best.get((i, j))
                if entry is None or total < entry[0]:
                    best[(i, j)] = (total, v)

    node_ids = hierarchy.node_ids
    results: dict[tuple[NodeId, NodeId], PathResult] = {}
    for (i, j), (distance, meet) in best.items():
        s_id, t_id = sources[i], destinations[j]
        if s_id == t_id:
            results[(s_id, t_id)] = _trivial(s_id)
            continue
        overlay = [meet]
        node = meet
        fwd = forward_preds[i]
        while node != src_idx[i]:
            node = fwd[node]
            overlay.append(node)
        overlay.reverse()
        node = meet
        bwd = backward_preds[j]
        while node != dst_idx[j]:
            node = bwd[node]
            overlay.append(node)
        overlay_ids = [node_ids[k] for k in overlay]
        results[(s_id, t_id)] = PathResult(
            source=s_id,
            destination=t_id,
            nodes=tuple(unpack_path(hierarchy.contracted, overlay_ids)),
            distance=distance,
        )
    return results


# ----------------------------------------------------------------------
# MSMD processors (registered in repro.search.multi.get_processor)
# ----------------------------------------------------------------------
class CSRSharedTreeProcessor(PreprocessingProcessor):
    """The paper's shared SSMD trees on the CSR kernel (``"dijkstra-csr"``).

    Identical strategy and distances to
    :class:`~repro.search.multi.SharedTreeProcessor`; the snapshot is
    the per-network artifact (built once, shared via the serving
    layer's :class:`~repro.service.cache.PreprocessingCache`).
    """

    name = "dijkstra-csr"

    def _build(self, network) -> CSRGraph:
        return csr_snapshot(network)

    def process(self, network, sources, destinations) -> MSMDResult:
        """Grow one CSR SSMD tree per source."""
        _validate(sources, destinations)
        csr = self.artifact_for(network)
        result = MSMDResult()
        for s in sources:
            stats = SearchStats()
            paths = csr_dijkstra_to_many(
                network, s, destinations, csr=csr, stats=stats
            )
            for t in destinations:
                result.paths[(s, t)] = paths[t]
            result.stats.merge(stats)
            result.searches += 1
        return result

    def process_union(self, network, set_queries) -> UnionPassResult:
        """One CSR tree per distinct source across all coalesced queries.

        The flat-kernel twin of
        :meth:`repro.search.multi.SharedTreeProcessor.process_union`:
        each distinct source grows one tree truncated at the union of
        the destinations any coalesced query needs from it, and the
        settled prefix — hence every sliced path — is bit-identical to a
        solo evaluation of that query.
        """
        csr = self.artifact_for(network)
        checked = _screen_union_queries(csr, set_queries)
        needed: dict[NodeId, dict[NodeId, None]] = {}
        for k, (sources, destinations) in enumerate(set_queries):
            if checked.errors[k] is not None:
                continue
            for s in sources:
                dests = needed.setdefault(s, {})
                for t in destinations:
                    dests[t] = None
        union_stats = SearchStats()
        trees: dict[NodeId, dict[NodeId, PathResult]] = {}
        for s, dests in needed.items():
            trees[s] = csr_dijkstra_to_many(
                network,
                s,
                list(dests),
                csr=csr,
                stats=union_stats,
                strict=False,
            )
        return _slice_union_tables(
            set_queries,
            checked.errors,
            lambda s, t: trees[s].get(t),
            union_stats=union_stats,
            union_searches=len(needed),
            pairs_computed=sum(len(dests) for dests in needed.values()),
        )


class CSRBidirectionalPairwiseProcessor(PreprocessingProcessor):
    """One CSR bidirectional search per pair (``"bidirectional-csr"``)."""

    name = "bidirectional-csr"

    def _build(self, network) -> CSRGraph:
        return csr_snapshot(network)

    def process(self, network, sources, destinations) -> MSMDResult:
        """Answer every pair with an independent bidirectional query."""
        _validate(sources, destinations)
        csr = self.artifact_for(network)
        result = MSMDResult()
        for s in sources:
            for t in destinations:
                stats = SearchStats()
                result.paths[(s, t)] = csr_bidirectional_path(
                    network, s, t, csr=csr, stats=stats
                )
                result.stats.merge(stats)
                result.searches += 1
        return result


class CSRCHManyToManyProcessor(PreprocessingProcessor):
    """Bucket many-to-many over a :class:`CSRHierarchy` (``"ch-csr"``).

    Matches :class:`~repro.search.ch.manytomany.CHManyToManyProcessor`
    semantics: an unreachable pair raises
    :class:`~repro.exceptions.NoPathError`.
    """

    name = "ch-csr"

    def __init__(
        self,
        hierarchy: CSRHierarchy | None = None,
        witness_settled_limit: int = 500,
    ) -> None:
        super().__init__(artifact=hierarchy)
        self._witness_settled_limit = witness_settled_limit

    def _build(self, network) -> CSRHierarchy:
        return ch_csr_hierarchy(
            network, witness_settled_limit=self._witness_settled_limit
        )

    def hierarchy_for(self, network) -> CSRHierarchy:
        """The flat hierarchy answering queries over ``network``."""
        return self.artifact_for(network)

    def process(self, network, sources, destinations) -> MSMDResult:
        """Run the bucket algorithm; every pair must be reachable."""
        _validate(sources, destinations)
        hierarchy = self.hierarchy_for(network)
        result = MSMDResult()
        paths = csr_ch_many_to_many(
            hierarchy, sources, destinations, stats=result.stats
        )
        for s in sources:
            for t in destinations:
                path = paths.get((s, t))
                if path is None:
                    raise NoPathError(s, t)
                result.paths[(s, t)] = path
        result.searches = len(sources) + len(destinations)
        return result

    def process_union(self, network, set_queries) -> UnionPassResult:
        """One flat bucket pass over the unions of all coalesced queries.

        Same sharing argument as
        :meth:`repro.search.ch.manytomany.CHManyToManyProcessor.process_union`
        (sweeps are per-endpoint, pair minimization is independent), run
        on the :class:`CSRHierarchy` kernels.
        """
        hierarchy = self.hierarchy_for(network)
        checked = _screen_union_queries(hierarchy, set_queries)
        union_sources, union_destinations = _union_order(
            [q for q, e in zip(set_queries, checked.errors) if e is None]
        )
        union_stats = SearchStats()
        paths: dict[tuple[NodeId, NodeId], PathResult] = {}
        if union_sources and union_destinations:
            paths = csr_ch_many_to_many(
                hierarchy,
                list(union_sources),
                list(union_destinations),
                stats=union_stats,
            )
        return _slice_union_tables(
            set_queries,
            checked.errors,
            lambda s, t: paths.get((s, t)),
            union_stats=union_stats,
            union_searches=len(union_sources) + len(union_destinations),
            pairs_computed=len(union_sources) * len(union_destinations),
        )
