"""Multi-source multi-destination (MSMD) processors for obfuscated queries.

An obfuscated path query ``Q(S, T)`` stands for the |S| x |T| path queries
``{Q(s, t) : s in S, t in T}`` and the server must answer all of them (it
cannot know which is real).  This module provides the server-side
evaluation strategies:

* :class:`NaivePairwiseProcessor` — one independent point-to-point search
  per (s, t) pair; the strawman whose cost grows with |S| x |T|.
* :class:`SharedTreeProcessor` — one single-source multi-destination
  Dijkstra tree per source (the paper's design); cost
  ``O(sum_s max_t ||s,t||^2)`` per Lemma 1.
* :class:`SideSelectingProcessor` — shared trees grown from whichever side
  of the query is smaller (valid on undirected networks), an ablation
  showing the |S| vs |T| asymmetry in Lemma 1.
* ``"ch"`` (:class:`repro.search.ch.manytomany.CHManyToManyProcessor`) —
  the bucket-based many-to-many algorithm over a preprocessed Contraction
  Hierarchy; amortizes work across the whole query mix.

All processors return the same :class:`MSMDResult` so experiments can swap
them freely.
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.exceptions import NoPathError, QueryError, ReproError
from repro.network.graph import NodeId
from repro.search.bidirectional import bidirectional_dijkstra_path
from repro.search.dijkstra import dijkstra_path, dijkstra_to_many
from repro.search.result import PathResult, SearchStats

__all__ = [
    "MSMDResult",
    "UnionPassResult",
    "MultiSourceMultiDestProcessor",
    "PreprocessingProcessor",
    "NaivePairwiseProcessor",
    "SharedTreeProcessor",
    "SideSelectingProcessor",
    "get_processor",
]


@dataclass(slots=True)
class MSMDResult:
    """All candidate result paths of one obfuscated path query.

    Attributes
    ----------
    paths:
        ``{(s, t): PathResult}`` for every pair in S x T.
    stats:
        Aggregate search cost over the whole evaluation.
    searches:
        Number of distinct graph searches performed (trees grown for the
        shared strategies, pairs for the naive one).
    """

    paths: dict[tuple[NodeId, NodeId], PathResult] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)
    searches: int = 0

    def path_for(self, source: NodeId, destination: NodeId) -> PathResult:
        """The candidate path answering ``Q(source, destination)``.

        Raises
        ------
        KeyError
            If the pair was not part of the evaluated query.
        """
        return self.paths[(source, destination)]

    @property
    def num_paths(self) -> int:
        """Number of candidate paths (|S| x |T|)."""
        return len(self.paths)


@dataclass(slots=True)
class UnionPassResult:
    """Outcome of one shared *union pass* over several set queries.

    A union pass answers a list of set queries ``[(S_1, T_1), ...]`` —
    typically concurrent obfuscated queries coalesced by the serving
    layer — with one shared kernel evaluation over the unions of their
    endpoint sets, then slices the pair table back per query.  Slicing
    is exact: ``tables[i]`` contains precisely the ``S_i x T_i`` pairs of
    query ``i``, in the same wire order and with the same
    :class:`~repro.search.result.PathResult` content that a separate
    ``process(network, S_i, T_i)`` call would have produced.

    Attributes
    ----------
    tables:
        One sliced :class:`MSMDResult` per input query, or ``None`` when
        that query failed (see ``errors``).  The total search work of
        the pass is attributed to the *first* successful table (the
        remaining tables carry zero stats), so summing per-table stats
        equals ``union_stats`` and no work is double-counted; when every
        query fails, the work is recorded only in ``union_stats``.
    errors:
        Per-query exception (:class:`~repro.exceptions.NoPathError`,
        :class:`~repro.exceptions.QueryError`, ...) or ``None``; a
        failing query matches what evaluating it alone would raise and
        never poisons its window-mates.
    union_sources, union_destinations:
        First-seen-ordered unions of the queries' endpoint sets.
    union_stats:
        Aggregate search cost of the whole shared pass.
    union_searches:
        Distinct graph searches (trees or sweeps) the pass performed.
    pairs_computed:
        Distinct ``(s, t)`` pairs the shared kernels evaluated — the
        deterministic work counter the coalescing benchmarks gate on.
    """

    tables: list[MSMDResult | None] = field(default_factory=list)
    errors: list[Exception | None] = field(default_factory=list)
    union_sources: tuple[NodeId, ...] = ()
    union_destinations: tuple[NodeId, ...] = ()
    union_stats: SearchStats = field(default_factory=SearchStats)
    union_searches: int = 0
    pairs_computed: int = 0

    @property
    def num_queries(self) -> int:
        """Number of set queries answered by the pass."""
        return len(self.tables)


def _union_order(
    set_queries: Sequence[tuple[Sequence[NodeId], Sequence[NodeId]]],
) -> tuple[tuple[NodeId, ...], tuple[NodeId, ...]]:
    """First-seen-ordered unions of the queries' source/destination sets."""
    sources: dict[NodeId, None] = {}
    destinations: dict[NodeId, None] = {}
    for query_sources, query_destinations in set_queries:
        for s in query_sources:
            sources.setdefault(s, None)
        for t in query_destinations:
            destinations.setdefault(t, None)
    return tuple(sources), tuple(destinations)


@dataclass(slots=True)
class _ScreenedQueries:
    """Per-query validation outcome of a union pass (internal)."""

    errors: list[Exception | None]


def _screen_union_queries(container, set_queries) -> _ScreenedQueries:
    """Validate every set query of a union pass independently.

    ``container`` is whatever the engine resolves endpoints against (the
    network, a contracted graph, a CSR hierarchy — anything supporting
    ``in``).  A query that would fail on its own (empty or duplicated
    sets, unknown endpoint) gets the same exception recorded and is
    excluded from the shared pass, instead of poisoning its window-mates.
    """
    from repro.exceptions import UnknownNodeError

    errors: list[Exception | None] = []
    for sources, destinations in set_queries:
        try:
            _validate(list(sources), list(destinations))
            for node in (*sources, *destinations):
                if node not in container:
                    raise UnknownNodeError(node)
        except ReproError as exc:
            errors.append(exc)
        else:
            errors.append(None)
    return _ScreenedQueries(errors=errors)


def _slice_union_tables(
    set_queries,
    errors: list[Exception | None],
    lookup,
    union_stats: SearchStats,
    union_searches: int,
    pairs_computed: int,
) -> UnionPassResult:
    """Slice a shared pass back into exact per-query tables.

    ``lookup(s, t)`` returns the pass's :class:`PathResult` for a pair
    or ``None`` when unreachable.  Pairs are emitted in each query's own
    ``S_i x T_i`` wire order (identical to a solo ``process`` call), a
    missing pair turns into the :class:`~repro.exceptions.NoPathError`
    the solo call would raise, and the pass's total stats are attributed
    to the first successful table so nothing is double-counted.
    """
    union_sources, union_destinations = _union_order(
        [query for query, error in zip(set_queries, errors) if error is None]
    )
    tables: list[MSMDResult | None] = []
    out_errors = list(errors)
    attributed = False
    for k, (sources, destinations) in enumerate(set_queries):
        if out_errors[k] is not None:
            tables.append(None)
            continue
        table = MSMDResult()
        error: Exception | None = None
        for s in sources:
            for t in destinations:
                path = lookup(s, t)
                if path is None:
                    error = NoPathError(s, t)
                    break
                table.paths[(s, t)] = path
            if error is not None:
                break
        if error is not None:
            out_errors[k] = error
            tables.append(None)
            continue
        if not attributed:
            table.stats.merge(union_stats)
            table.searches = union_searches
            attributed = True
        tables.append(table)
    return UnionPassResult(
        tables=tables,
        errors=out_errors,
        union_sources=union_sources,
        union_destinations=union_destinations,
        union_stats=union_stats,
        union_searches=union_searches,
        pairs_computed=pairs_computed,
    )


def _validate(sources: Sequence[NodeId], destinations: Sequence[NodeId]) -> None:
    if not sources:
        raise QueryError("obfuscated query needs at least one source")
    if not destinations:
        raise QueryError("obfuscated query needs at least one destination")
    if len(set(sources)) != len(sources):
        raise QueryError("duplicate sources in obfuscated query")
    if len(set(destinations)) != len(destinations):
        raise QueryError("duplicate destinations in obfuscated query")


class MultiSourceMultiDestProcessor:
    """Interface of every MSMD evaluation strategy.

    Subclasses implement :meth:`process`, answering every pair of
    ``sources x destinations`` over ``network``.
    """

    #: short identifier used by experiment configs and :func:`get_processor`
    name: str = "abstract"

    def process(
        self,
        network,
        sources: Sequence[NodeId],
        destinations: Sequence[NodeId],
    ) -> MSMDResult:
        """Evaluate the obfuscated query; see :class:`MSMDResult`."""
        raise NotImplementedError

    def process_union(
        self,
        network,
        set_queries: Sequence[tuple[Sequence[NodeId], Sequence[NodeId]]],
    ) -> UnionPassResult:
        """Answer several set queries in one (possibly shared) pass.

        The contract is *exactness*: ``tables[i]`` must be
        byte-identical — same pairs, same order, same paths, same
        distances — to ``process(network, S_i, T_i)``, and ``errors[i]``
        must be the exception that call would raise.  This default
        simply evaluates each query independently, so every processor
        (including future registrations) satisfies the contract for
        free; strategies whose cost is sublinear in the union of the
        endpoint sets (shared SSMD trees, CH buckets) override it to
        actually share work across the queries.
        """
        out = UnionPassResult()
        answered = []
        for sources, destinations in set_queries:
            try:
                table = self.process(network, list(sources), list(destinations))
            except ReproError as exc:
                out.tables.append(None)
                out.errors.append(exc)
                continue
            out.tables.append(table)
            out.errors.append(None)
            out.union_stats.merge(table.stats)
            out.union_searches += table.searches
            out.pairs_computed += table.num_paths
            answered.append((sources, destinations))
        out.union_sources, out.union_destinations = _union_order(answered)
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PreprocessingProcessor(MultiSourceMultiDestProcessor):
    """Base for processors that query a per-network preprocessed artifact.

    A preprocessing engine (landmark index, contracted graph, ...) pays a
    one-time build cost per road network and reuses the artifact for every
    later query.  This base implements that lifecycle once: subclasses
    define :meth:`_build` and call :meth:`artifact_for`; a prebuilt
    artifact may be injected via the constructor (e.g. one loaded from
    disk), otherwise artifacts are built on first use and memoized for the
    network object's lifetime.
    """

    def __init__(self, artifact: object | None = None) -> None:
        self._artifact = artifact
        self._cache: "weakref.WeakKeyDictionary[object, object]" = (
            weakref.WeakKeyDictionary()
        )

    def _build(self, network) -> object:
        """Build the engine's artifact for ``network`` (subclass hook)."""
        raise NotImplementedError

    def artifact_for(self, network) -> object:
        """The (injected, cached, or freshly built) artifact for ``network``."""
        if self._artifact is not None:
            return self._artifact
        artifact = self._cache.get(network)
        if artifact is None:
            artifact = self._build(network)
            self._cache[network] = artifact
        return artifact

    def use_artifact(self, artifact: object | None) -> None:
        """Inject (or clear) the prebuilt artifact every query should use.

        This is how the serving layer hands a
        :class:`~repro.service.cache.PreprocessingCache` entry to a
        per-worker processor handle: the artifact is shared, the handle
        is not.  ``None`` reverts to the build-on-first-use lifecycle.
        """
        self._artifact = artifact


class NaivePairwiseProcessor(MultiSourceMultiDestProcessor):
    """One independent point-to-point search per (s, t) pair.

    Parameters
    ----------
    engine:
        ``"dijkstra"`` (default) or ``"bidirectional"`` — which
        point-to-point algorithm answers each pair.
    """

    name = "naive"

    def __init__(self, engine: str = "dijkstra") -> None:
        if engine not in ("dijkstra", "bidirectional"):
            raise ValueError(f"unknown engine {engine!r}")
        self._engine = engine

    def process(self, network, sources, destinations) -> MSMDResult:
        """Answer every (s, t) pair with an independent point search."""
        _validate(sources, destinations)
        result = MSMDResult()
        for s in sources:
            for t in destinations:
                stats = SearchStats()
                if self._engine == "bidirectional":
                    path = bidirectional_dijkstra_path(network, s, t, stats=stats)
                else:
                    path = dijkstra_path(network, s, t, stats=stats)
                result.paths[(s, t)] = path
                result.stats.merge(stats)
                result.searches += 1
        return result


class SharedTreeProcessor(MultiSourceMultiDestProcessor):
    """One SSMD spanning tree per source — the paper's processor.

    For each ``s in S`` a single Dijkstra tree is grown until all of ``T``
    is settled, so the per-source cost is bounded by the furthest
    destination (Lemma 1) instead of paying once per destination.
    """

    name = "shared"

    def process(self, network, sources, destinations) -> MSMDResult:
        """Grow one truncated Dijkstra tree per source (Lemma 1 cost)."""
        _validate(sources, destinations)
        result = MSMDResult()
        for s in sources:
            stats = SearchStats()
            paths = dijkstra_to_many(network, s, destinations, stats=stats)
            for t in destinations:
                result.paths[(s, t)] = paths[t]
            result.stats.merge(stats)
            result.searches += 1
        return result

    def process_union(self, network, set_queries) -> UnionPassResult:
        """One tree per *distinct* source across all coalesced queries.

        For each source the tree is truncated at the union of the
        destinations any query needs from it — a superset of every
        single query's truncation point, so the paths each query reads
        off are bit-identical to its own ``process`` call (a Dijkstra
        tree's settled prefix does not change when the tree grows
        further).  Queries sharing sources therefore share trees; the
        pass cost is ``O(|union S|)`` trees instead of ``O(sum |S_i|)``.
        """
        checked = _screen_union_queries(network, set_queries)
        needed: dict[NodeId, dict[NodeId, None]] = {}
        for k, (sources, destinations) in enumerate(set_queries):
            if checked.errors[k] is not None:
                continue
            for s in sources:
                dests = needed.setdefault(s, {})
                for t in destinations:
                    dests[t] = None
        union_stats = SearchStats()
        trees: dict[NodeId, dict[NodeId, PathResult]] = {}
        for s, dests in needed.items():
            trees[s] = dijkstra_to_many(
                network, s, list(dests), stats=union_stats, strict=False
            )
        return _slice_union_tables(
            set_queries,
            checked.errors,
            lambda s, t: trees[s].get(t),
            union_stats=union_stats,
            union_searches=len(needed),
            pairs_computed=sum(len(dests) for dests in needed.values()),
        )


class SideSelectingProcessor(MultiSourceMultiDestProcessor):
    """Shared trees grown from the smaller of S and T.

    When |T| < |S| it is cheaper to grow |T| trees from the destinations
    and reverse the resulting paths.  On undirected networks the reversed
    tree is grown on the network itself; on directed networks it is grown
    on the reverse adjacency (:class:`~repro.network.views.ReverseView`),
    so one-way streets are honored exactly.
    """

    name = "side-selecting"

    def process(self, network, sources, destinations) -> MSMDResult:
        """Grow shared trees from the smaller side, reversing if needed."""
        _validate(sources, destinations)
        if len(destinations) >= len(sources):
            return SharedTreeProcessor().process(network, sources, destinations)
        if getattr(network, "directed", False):
            from repro.network.views import ReverseView

            backward = ReverseView(network)
        else:
            backward = network
        swapped = SharedTreeProcessor().process(backward, destinations, sources)
        result = MSMDResult(stats=swapped.stats, searches=swapped.searches)
        for (t, s), path in swapped.paths.items():
            result.paths[(s, t)] = PathResult(
                source=s,
                destination=t,
                nodes=tuple(reversed(path.nodes)),
                distance=path.distance,
            )
        return result


_PROCESSORS: dict[str, type[MultiSourceMultiDestProcessor]] = {
    NaivePairwiseProcessor.name: NaivePairwiseProcessor,
    SharedTreeProcessor.name: SharedTreeProcessor,
    SideSelectingProcessor.name: SideSelectingProcessor,
}

# Processors that live above this module in the layering (they subclass
# MultiSourceMultiDestProcessor), registered as import paths and resolved
# on first use so this module never imports upwards.
_LAZY_PROCESSORS: dict[str, tuple[str, str]] = {
    "ch": ("repro.search.ch.manytomany", "CHManyToManyProcessor"),
    "alt": ("repro.search.alt", "ALTPairwiseProcessor"),
    "dijkstra-csr": ("repro.search.kernels", "CSRSharedTreeProcessor"),
    "bidirectional-csr": (
        "repro.search.kernels",
        "CSRBidirectionalPairwiseProcessor",
    ),
    "ch-csr": ("repro.search.kernels", "CSRCHManyToManyProcessor"),
    "overlay": ("repro.search.overlay", "OverlayProcessor"),
    "overlay-csr": ("repro.search.overlay", "CSROverlayProcessor"),
    "dijkstra-vec": ("repro.search.vectorized", "VecSharedTreeProcessor"),
    "overlay-nested": ("repro.search.overlay", "NestedOverlayProcessor"),
}


def get_processor(name: str) -> MultiSourceMultiDestProcessor:
    """Instantiate a processor by its ``name`` attribute.

    Raises
    ------
    KeyError
        For unknown names; the message lists the valid ones.
    """
    lazy = _LAZY_PROCESSORS.get(name)
    if lazy is not None:
        import importlib

        module_path, class_name = lazy
        cls = getattr(importlib.import_module(module_path), class_name)
        _PROCESSORS[name] = cls
        del _LAZY_PROCESSORS[name]
    try:
        return _PROCESSORS[name]()
    except KeyError:
        valid = ", ".join(sorted([*_PROCESSORS, *_LAZY_PROCESSORS]))
        raise KeyError(f"unknown processor {name!r}; valid: {valid}") from None
