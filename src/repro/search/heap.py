"""Indexed binary min-heap with decrease-key.

Dijkstra and A* need a priority queue that can lower the priority of an
already-enqueued node.  The standard-library ``heapq`` handles this only by
lazy deletion; an addressable heap keeps the frontier size equal to the
number of live nodes, which keeps the ``SearchStats.heap_pushes`` counter
meaningful for the cost-model experiments.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Generic, TypeVar

K = TypeVar("K", bound=Hashable)

__all__ = ["AddressableHeap"]


class AddressableHeap(Generic[K]):
    """Binary min-heap over ``(priority, key)`` with O(log n) decrease-key.

    Ties are broken by insertion order, which makes every search that uses
    the heap fully deterministic.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[float, int, K]] = []
        self._index: dict[K, int] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._index

    def push(self, key: K, priority: float) -> None:
        """Insert ``key`` with ``priority``.

        Raises
        ------
        KeyError
            If ``key`` is already present (use :meth:`decrease_key`).
        """
        if key in self._index:
            raise KeyError(f"key already in heap: {key!r}")
        entry = (priority, self._counter, key)
        self._counter += 1
        self._entries.append(entry)
        self._index[key] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def push_or_decrease(self, key: K, priority: float) -> bool:
        """Insert ``key`` or lower its priority; return ``True`` on insert.

        If ``key`` is present with an equal or lower priority this is a
        no-op (returns ``False``).
        """
        pos = self._index.get(key)
        if pos is None:
            self.push(key, priority)
            return True
        if priority < self._entries[pos][0]:
            self.decrease_key(key, priority)
        return False

    def decrease_key(self, key: K, priority: float) -> None:
        """Lower the priority of an existing ``key``.

        Raises
        ------
        KeyError
            If ``key`` is absent.
        ValueError
            If ``priority`` is higher than the current one.
        """
        pos = self._index[key]
        current = self._entries[pos][0]
        if priority > current:
            raise ValueError(
                f"cannot increase priority of {key!r} from {current} to {priority}"
            )
        self._entries[pos] = (priority, self._entries[pos][1], key)
        self._sift_up(pos)

    def peek(self) -> tuple[K, float]:
        """Return ``(key, priority)`` of the minimum without removing it."""
        if not self._entries:
            raise IndexError("peek on empty heap")
        priority, _order, key = self._entries[0]
        return key, priority

    def pop(self) -> tuple[K, float]:
        """Remove and return ``(key, priority)`` of the minimum."""
        if not self._entries:
            raise IndexError("pop on empty heap")
        priority, _order, key = self._entries[0]
        last = self._entries.pop()
        del self._index[key]
        if self._entries:
            self._entries[0] = last
            self._index[last[2]] = 0
            self._sift_down(0)
        return key, priority

    def priority_of(self, key: K) -> float:
        """Current priority of ``key``."""
        return self._entries[self._index[key]][0]

    # ------------------------------------------------------------------
    def _sift_up(self, pos: int) -> None:
        entry = self._entries[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            if self._entries[parent] <= entry:
                break
            self._entries[pos] = self._entries[parent]
            self._index[self._entries[pos][2]] = pos
            pos = parent
        self._entries[pos] = entry
        self._index[entry[2]] = pos

    def _sift_down(self, pos: int) -> None:
        size = len(self._entries)
        entry = self._entries[pos]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._entries[right] < self._entries[child]:
                child = right
            if entry <= self._entries[child]:
                break
            self._entries[pos] = self._entries[child]
            self._index[self._entries[pos][2]] = pos
            pos = child
        self._entries[pos] = entry
        self._index[entry[2]] = pos
