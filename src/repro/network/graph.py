"""In-memory weighted road network.

The paper models a road network as a weighted graph ``G(N, E)`` whose nodes
carry a geographic position and whose edge weights are non-negative travel
costs (distance, time or toll).  :class:`RoadNetwork` implements exactly
that: a dictionary-of-dictionaries adjacency structure keyed by integer node
ids, with an ``(x, y)`` coordinate per node.

Networks may be directed or undirected; OPAQUE's experiments use undirected
networks (two-way streets) but the search algorithms work on both.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

from repro.exceptions import (
    DuplicateNodeError,
    EdgeError,
    UnknownNodeError,
)

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D position in an arbitrary planar coordinate system."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)


class RoadNetwork:
    """A weighted graph with spatially embedded nodes.

    Parameters
    ----------
    directed:
        When ``False`` (the default, matching the paper's two-way roads),
        ``add_edge(u, v, w)`` also inserts the reverse edge ``(v, u, w)``.

    Notes
    -----
    Node ids can be any hashable value; the generators in this package use
    consecutive integers.  Edge weights must be non-negative (Dijkstra's
    precondition); self loops are rejected because they never appear on a
    shortest path and only distort the storage clustering.
    """

    def __init__(self, directed: bool = False) -> None:
        self._directed = directed
        self._positions: dict[NodeId, Point] = {}
        self._adjacency: dict[NodeId, dict[NodeId, float]] = {}
        self._edge_count = 0
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: NodeId, x: float, y: float) -> None:
        """Add a node at position ``(x, y)``.

        Raises
        ------
        DuplicateNodeError
            If ``node_id`` already exists.
        """
        if node_id in self._positions:
            raise DuplicateNodeError(node_id)
        self._positions[node_id] = Point(float(x), float(y))
        self._adjacency[node_id] = {}
        self._version += 1

    def add_edge(self, u: NodeId, v: NodeId, weight: float | None = None) -> None:
        """Add an edge from ``u`` to ``v``.

        When ``weight`` is omitted, the Euclidean distance between the two
        endpoints is used, which keeps the A* Euclidean heuristic admissible.

        Raises
        ------
        UnknownNodeError
            If either endpoint has not been added.
        EdgeError
            For self loops or negative weights.
        """
        if u not in self._positions:
            raise UnknownNodeError(u)
        if v not in self._positions:
            raise UnknownNodeError(v)
        if u == v:
            raise EdgeError(f"self loop on node {u!r} is not allowed")
        if weight is None:
            weight = self._positions[u].distance_to(self._positions[v])
        weight = float(weight)
        if weight < 0:
            raise EdgeError(f"negative weight {weight} on edge ({u!r}, {v!r})")
        if math.isnan(weight) or math.isinf(weight):
            raise EdgeError(f"non-finite weight {weight} on edge ({u!r}, {v!r})")
        if v not in self._adjacency[u]:
            self._edge_count += 1
        self._adjacency[u][v] = weight
        if not self._directed:
            self._adjacency[v][u] = weight
        self._version += 1

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge from ``u`` to ``v`` (and the reverse if undirected).

        Raises
        ------
        EdgeError
            If the edge does not exist.
        """
        if u not in self._adjacency or v not in self._adjacency.get(u, {}):
            raise EdgeError(f"edge ({u!r}, {v!r}) does not exist")
        del self._adjacency[u][v]
        self._edge_count -= 1
        if not self._directed and u in self._adjacency.get(v, {}):
            del self._adjacency[v][u]
        self._version += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        """Whether edges are one-way."""
        return self._directed

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every structural change.

        A cheap staleness stamp: caches keyed by content (e.g. the
        serving layer's :func:`~repro.service.cache.network_fingerprint`)
        can skip rehashing the whole graph while the version is
        unchanged.  Two different networks may share a version number —
        it only orders the mutations of *one* instance.
        """
        return self._version

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._positions)

    @property
    def num_edges(self) -> int:
        """Number of distinct edges added (an undirected edge counts once)."""
        return self._edge_count

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids in insertion order."""
        return iter(self._positions)

    def edges(self) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Iterate over edges as ``(u, v, weight)``.

        For undirected networks each edge is yielded once, in the direction
        it was stored first.
        """
        seen: set[tuple[NodeId, NodeId]] = set()
        for u, nbrs in self._adjacency.items():
            for v, w in nbrs.items():
                if not self._directed:
                    key = (v, u)
                    if key in seen:
                        continue
                    seen.add((u, v))
                yield u, v, w

    def position(self, node_id: NodeId) -> Point:
        """Return the :class:`Point` of a node.

        Raises
        ------
        UnknownNodeError
            If the node does not exist.
        """
        try:
            return self._positions[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def neighbors(self, node_id: NodeId) -> dict[NodeId, float]:
        """Return the ``{neighbor: weight}`` map of outgoing edges.

        The returned mapping is the live internal dictionary for speed;
        callers must not mutate it.
        """
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def degree(self, node_id: NodeId) -> int:
        """Out-degree of ``node_id``."""
        return len(self.neighbors(node_id))

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether an edge from ``u`` to ``v`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def edge_weight(self, u: NodeId, v: NodeId) -> float:
        """Weight of the edge from ``u`` to ``v``.

        Raises
        ------
        EdgeError
            If the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise EdgeError(f"edge ({u!r}, {v!r}) does not exist")
        return self._adjacency[u][v]

    def euclidean_distance(self, u: NodeId, v: NodeId) -> float:
        """Straight-line distance between two nodes' positions."""
        return self.position(u).distance_to(self.position(v))

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all node positions.

        Raises
        ------
        ValueError
            If the network has no nodes.
        """
        if not self._positions:
            raise ValueError("bounding box of an empty network is undefined")
        xs = [p.x for p in self._positions.values()]
        ys = [p.y for p in self._positions.values()]
        return min(xs), min(ys), max(xs), max(ys)

    # ------------------------------------------------------------------
    # Connectivity helpers
    # ------------------------------------------------------------------
    def component_of(self, start: NodeId) -> set[NodeId]:
        """Return the set of nodes reachable from ``start`` (BFS)."""
        if start not in self._positions:
            raise UnknownNodeError(start)
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: list[NodeId] = []
            for node in frontier:
                for nbr in self._adjacency[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        nxt.append(nbr)
            frontier = nxt
        return seen

    def connected_components(self) -> list[set[NodeId]]:
        """All weakly connected components, largest first.

        For directed networks this treats edges as undirected, which is the
        relevant notion for "is the map in one piece".
        """
        remaining = set(self._positions)
        undirected_adj: dict[NodeId, set[NodeId]] = {n: set() for n in remaining}
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                undirected_adj[u].add(v)
                undirected_adj[v].add(u)
        components: list[set[NodeId]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                nxt: list[NodeId] = []
                for node in frontier:
                    for nbr in undirected_adj[node]:
                        if nbr not in seen:
                            seen.add(nbr)
                            nxt.append(nbr)
                frontier = nxt
            components.append(seen)
            remaining -= seen
        components.sort(key=len, reverse=True)
        return components

    def is_connected(self) -> bool:
        """Whether every node is reachable from every other (weakly)."""
        if not self._positions:
            return True
        return len(self.component_of(next(iter(self._positions)))) == len(self)

    def is_strongly_connected(self) -> bool:
        """Whether every node reaches every other along edge directions.

        Equivalent to :meth:`is_connected` on undirected networks.  Checked
        as "one node reaches all" plus "all reach that node" (BFS on the
        reversed adjacency).
        """
        if not self._positions:
            return True
        if not self._directed:
            return self.is_connected()
        start = next(iter(self._positions))
        if len(self.component_of(start)) != len(self):
            return False
        reverse_adj: dict[NodeId, list[NodeId]] = {n: [] for n in self._positions}
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                reverse_adj[v].append(u)
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: list[NodeId] = []
            for node in frontier:
                for nbr in reverse_adj[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        nxt.append(nbr)
            frontier = nxt
        return len(seen) == len(self)

    def largest_component_subgraph(self) -> "RoadNetwork":
        """Return a copy restricted to the largest connected component."""
        components = self.connected_components()
        if not components:
            return RoadNetwork(directed=self._directed)
        return self.subgraph(components[0])

    def subgraph(self, node_ids: Iterable[NodeId]) -> "RoadNetwork":
        """Return the induced subgraph on ``node_ids`` as a new network."""
        keep = set(node_ids)
        missing = keep - set(self._positions)
        if missing:
            raise UnknownNodeError(next(iter(missing)))
        sub = RoadNetwork(directed=self._directed)
        for node in self._positions:
            if node in keep:
                p = self._positions[node]
                sub.add_node(node, p.x, p.y)
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub

    def copy(self) -> "RoadNetwork":
        """Deep copy of the network."""
        return self.subgraph(self._positions)

    # ------------------------------------------------------------------
    # Interop (used by tests as an oracle; never by library code)
    # ------------------------------------------------------------------
    def to_networkx(self):  # pragma: no cover - exercised in tests
        """Convert to a ``networkx`` graph with ``weight`` edge attributes."""
        import networkx as nx

        g = nx.DiGraph() if self._directed else nx.Graph()
        for node, p in self._positions.items():
            g.add_node(node, x=p.x, y=p.y)
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"RoadNetwork({kind}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
