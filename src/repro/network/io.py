"""Plain-text serialization for road networks (TIGER-like edge lists).

The paper's obfuscator keeps "a simple road map (e.g., obtained from
Tiger/Line)".  Real TIGER/Line files are census shapefiles; this module
implements the equivalent *information content* as a human-readable text
format so maps can be shipped between the obfuscator and tooling:

```
# comment lines start with '#'
directed 0
node <id> <x> <y>
edge <u> <v> <weight>
```

Node ids are stored as integers.  Round-tripping is exact up to float
repr precision.
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.exceptions import GraphError
from repro.network.graph import RoadNetwork

__all__ = ["read_network", "write_network", "dumps_network", "loads_network"]


def write_network(network: RoadNetwork, path: str | os.PathLike[str]) -> None:
    """Write ``network`` to ``path`` in the text format described above."""
    with open(path, "w", encoding="utf-8") as fh:
        _write(network, fh)


def read_network(path: str | os.PathLike[str]) -> RoadNetwork:
    """Read a network previously written by :func:`write_network`."""
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh)


def dumps_network(network: RoadNetwork) -> str:
    """Serialize ``network`` to a string."""
    import io as _io

    buf = _io.StringIO()
    _write(network, buf)
    return buf.getvalue()


def loads_network(text: str) -> RoadNetwork:
    """Parse a network from a string produced by :func:`dumps_network`."""
    import io as _io

    return _read(_io.StringIO(text))


def _write(network: RoadNetwork, fh: TextIO) -> None:
    fh.write("# repro road network v1\n")
    fh.write(f"directed {1 if network.directed else 0}\n")
    for node in network.nodes():
        p = network.position(node)
        fh.write(f"node {node} {p.x!r} {p.y!r}\n")
    for u, v, w in network.edges():
        fh.write(f"edge {u} {v} {w!r}\n")


def _read(fh: TextIO) -> RoadNetwork:
    network: RoadNetwork | None = None
    pending_edges: list[tuple[int, int, float]] = []
    for line_no, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "directed":
                if network is not None:
                    raise GraphError("duplicate 'directed' header")
                network = RoadNetwork(directed=bool(int(fields[1])))
            elif kind == "node":
                if network is None:
                    raise GraphError("'node' before 'directed' header")
                network.add_node(int(fields[1]), float(fields[2]), float(fields[3]))
            elif kind == "edge":
                pending_edges.append((int(fields[1]), int(fields[2]), float(fields[3])))
            else:
                raise GraphError(f"unknown record kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise GraphError(f"malformed line {line_no}: {line!r}") from exc
    if network is None:
        raise GraphError("missing 'directed' header")
    for u, v, w in pending_edges:
        network.add_edge(u, v, w)
    return network
