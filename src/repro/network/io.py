"""Plain-text serialization for road networks (TIGER-like edge lists).

The paper's obfuscator keeps "a simple road map (e.g., obtained from
Tiger/Line)".  Real TIGER/Line files are census shapefiles; this module
implements the equivalent *information content* as a human-readable text
format so maps can be shipped between the obfuscator and tooling:

```
# comment lines start with '#'
directed 0
node <id> <x> <y>
edge <u> <v> <weight>
```

Node ids are stored as integers.  Round-tripping is exact up to float
repr precision.
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.exceptions import GraphError
from repro.network.graph import RoadNetwork
from repro.network.partition import Partition

__all__ = [
    "read_network",
    "write_network",
    "dumps_network",
    "loads_network",
    "read_dimacs",
    "write_dimacs",
    "read_partition",
    "write_partition",
    "dumps_partition",
    "loads_partition",
    "partition_cell_lines",
    "parse_partition_cells",
]


def write_network(network: RoadNetwork, path: str | os.PathLike[str]) -> None:
    """Write ``network`` to ``path`` in the text format described above."""
    with open(path, "w", encoding="utf-8") as fh:
        _write(network, fh)


def read_network(path: str | os.PathLike[str]) -> RoadNetwork:
    """Read a network previously written by :func:`write_network`."""
    with open(path, "r", encoding="utf-8") as fh:
        return _read(fh)


def dumps_network(network: RoadNetwork) -> str:
    """Serialize ``network`` to a string."""
    import io as _io

    buf = _io.StringIO()
    _write(network, buf)
    return buf.getvalue()


def loads_network(text: str) -> RoadNetwork:
    """Parse a network from a string produced by :func:`dumps_network`."""
    import io as _io

    return _read(_io.StringIO(text))


def _write(network: RoadNetwork, fh: TextIO) -> None:
    fh.write("# repro road network v1\n")
    fh.write(f"directed {1 if network.directed else 0}\n")
    for node in network.nodes():
        p = network.position(node)
        fh.write(f"node {node} {p.x!r} {p.y!r}\n")
    for u, v, w in network.edges():
        fh.write(f"edge {u} {v} {w!r}\n")


def read_dimacs(
    gr_path: str | os.PathLike[str],
    co_path: str | os.PathLike[str] | None = None,
    directed: bool = True,
) -> RoadNetwork:
    """Read a 9th DIMACS Challenge shortest-path graph (``.gr`` + ``.co``).

    The interchange format the road-network literature (and the paper's
    TIGER/Line-derived benchmarks) ships real metro extracts in::

        c  comment                      c  comment
        p sp <n> <m>                    p aux sp co <n>
        a <u> <v> <weight>              v <id> <x> <y>

    ``.gr`` carries arcs (1-based integer node ids), ``.co`` carries
    coordinates.  Node ids are kept verbatim; nodes named by ``p sp``
    but absent from the ``.co`` file sit at the origin (coordinates are
    optional in the challenge corpus).

    Parameters
    ----------
    gr_path:
        The arc file.
    co_path:
        Optional coordinate file; without it every node sits at
        ``(0, 0)`` (fine for Dijkstra/overlay engines, useless for A*).
    directed:
        DIMACS arcs are directed; pass ``False`` for corpora that list
        both orientations of symmetric graphs to fold them into one
        undirected network.

    Raises
    ------
    GraphError
        For malformed lines (reported with their line number), a
        missing ``p`` header, arc counts that do not match the header,
        or node ids outside ``1..n``.
    """
    coords: dict[int, tuple[float, float]] = {}
    if co_path is not None:
        declared_co: int | None = None
        with open(co_path, "r", encoding="utf-8") as fh:
            for line_no, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line or line.startswith("c"):
                    continue
                fields = line.split()
                try:
                    if fields[0] == "p":
                        if declared_co is not None:
                            raise GraphError("duplicate 'p' header")
                        if fields[1:4] != ["aux", "sp", "co"]:
                            raise GraphError(
                                f"not a coordinate file: {line!r}"
                            )
                        declared_co = int(fields[4])
                    elif fields[0] == "v":
                        if declared_co is None:
                            raise GraphError("'v' line before 'p' header")
                        node, x, y = (
                            int(fields[1]), float(fields[2]), float(fields[3])
                        )
                        coords[node] = (x, y)
                    else:
                        raise GraphError(
                            f"unknown record kind {fields[0]!r}"
                        )
                except (IndexError, ValueError) as exc:
                    raise GraphError(
                        f"malformed line {line_no}: {line!r}"
                    ) from exc
        if declared_co is None:
            raise GraphError("missing 'p aux sp co' header")
        if len(coords) != declared_co:
            raise GraphError(
                f"coordinate file declares {declared_co} nodes, "
                f"lists {len(coords)}"
            )
    network = RoadNetwork(directed=directed)
    declared: tuple[int, int] | None = None
    arcs = 0
    with open(gr_path, "r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            fields = line.split()
            try:
                if fields[0] == "p":
                    if declared is not None:
                        raise GraphError("duplicate 'p' header")
                    if fields[1] != "sp":
                        raise GraphError(f"not a shortest-path file: {line!r}")
                    declared = (int(fields[2]), int(fields[3]))
                    for node in range(1, declared[0] + 1):
                        x, y = coords.get(node, (0.0, 0.0))
                        network.add_node(node, x, y)
                elif fields[0] == "a":
                    if declared is None:
                        raise GraphError("'a' line before 'p' header")
                    u, v, w = int(fields[1]), int(fields[2]), float(fields[3])
                    if not (1 <= u <= declared[0] and 1 <= v <= declared[0]):
                        raise GraphError(
                            f"arc ({u}, {v}) outside 1..{declared[0]}"
                        )
                    arcs += 1
                    network.add_edge(u, v, w)
                else:
                    raise GraphError(f"unknown record kind {fields[0]!r}")
            except (IndexError, ValueError) as exc:
                raise GraphError(
                    f"malformed line {line_no}: {line!r}"
                ) from exc
    if declared is None:
        raise GraphError("missing 'p sp' header")
    if arcs != declared[1]:
        raise GraphError(f"header declares {declared[1]} arcs, found {arcs}")
    return network


def write_dimacs(
    network: RoadNetwork,
    gr_path: str | os.PathLike[str],
    co_path: str | os.PathLike[str] | None = None,
    comment: str = "repro road network",
) -> None:
    """Write ``network`` in DIMACS ``.gr`` (and optionally ``.co``) form.

    Node ids must already be the 1-based dense integers the format
    requires.  Undirected networks emit both orientations of every edge
    (the convention of the challenge's symmetric corpora); integral
    weights are written as integers, others with full float precision,
    so :func:`read_dimacs` round-trips exactly.

    Raises
    ------
    GraphError
        For node ids that are not ``1..n`` integers.
    """
    n = len(network)
    for node in network.nodes():
        if not isinstance(node, int) or not 1 <= node <= n:
            raise GraphError(
                f"DIMACS serialization needs dense 1-based integer node "
                f"ids, got {node!r}"
            )

    def fmt(w: float) -> str:
        return str(int(w)) if float(w).is_integer() else repr(float(w))

    arcs: list[tuple[int, int, float]] = []
    for u, v, w in network.edges():
        arcs.append((u, v, w))
        if not network.directed:
            arcs.append((v, u, w))
    with open(gr_path, "w", encoding="utf-8") as fh:
        fh.write(f"c {comment}\n")
        fh.write(f"p sp {n} {len(arcs)}\n")
        for u, v, w in arcs:
            fh.write(f"a {u} {v} {fmt(w)}\n")
    if co_path is not None:
        with open(co_path, "w", encoding="utf-8") as fh:
            fh.write(f"c {comment}\n")
            fh.write(f"p aux sp co {n}\n")
            for node in sorted(network.nodes()):
                p = network.position(node)
                fh.write(f"v {node} {p.x!r} {p.y!r}\n")


def write_partition(
    partition: Partition, path: str | os.PathLike[str]
) -> None:
    """Write a :class:`~repro.network.partition.Partition` to ``path``.

    Format (same conventions as the network format)::

        # comment lines start with '#'
        capacity <cell capacity>
        cell <cell id> <node id> <node id> ...

    Only the capacity and cell membership are stored; boundary sets and
    cut edges are derived from the network again on load, so the file
    stays small and can never drift from the graph it describes.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_partition(partition))


def partition_cell_lines(partition: Partition) -> list[str]:
    """Serialize a partition's cells as ``cell <id> <node>...`` lines.

    The shared record format of partition files and overlay files
    (:mod:`repro.search.overlay`); node ids must be integers.

    Raises
    ------
    GraphError
        For non-integer node ids.
    """
    lines = []
    for i, members in enumerate(partition.cells):
        for node in members:
            if not isinstance(node, int):
                raise GraphError(
                    f"partition serialization needs integer node ids, "
                    f"got {node!r}"
                )
        lines.append(f"cell {i} " + " ".join(str(n) for n in members))
    return lines


def parse_partition_cells(
    cells: list[tuple[int, list[int]]], network, capacity: int
) -> Partition:
    """Assemble parsed ``cell`` records into a validated :class:`Partition`.

    The shared back half of the partition and overlay readers: sorts by
    cell id, requires dense ``0..n-1`` numbering, and validates against
    ``network`` via :meth:`Partition.from_cells`.

    Raises
    ------
    GraphError
        For gaps or duplicates in the numbering, or cells that do not
        partition ``network``.
    """
    cells = sorted(cells, key=lambda item: item[0])
    if [i for i, _ in cells] != list(range(len(cells))):
        raise GraphError("partition cells are not numbered 0..n-1")
    return Partition.from_cells(
        network, [members for _, members in cells], capacity
    )


def dumps_partition(partition: Partition) -> str:
    """Serialize a partition to a string (see :func:`write_partition`)."""
    lines = ["# repro partition v1", f"capacity {partition.cell_capacity}"]
    lines.extend(partition_cell_lines(partition))
    return "\n".join(lines) + "\n"


def read_partition(path: str | os.PathLike[str], network) -> Partition:
    """Read a partition written by :func:`write_partition`.

    ``network`` supplies the adjacency the boundary sets and cut edges
    are derived from; its node set must match the file exactly.

    Raises
    ------
    GraphError
        For malformed input or cells that do not partition ``network``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        return _read_partition(fh, network)


def loads_partition(text: str, network) -> Partition:
    """Parse a partition from a string produced by :func:`dumps_partition`."""
    import io as _io

    return _read_partition(_io.StringIO(text), network)


def _read_partition(fh: TextIO, network) -> Partition:
    capacity: int | None = None
    cells: list[tuple[int, list[int]]] = []
    for line_no, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "capacity":
                if capacity is not None:
                    raise GraphError("duplicate 'capacity' header")
                capacity = int(fields[1])
            elif kind == "cell":
                cells.append((int(fields[1]), [int(f) for f in fields[2:]]))
            else:
                raise GraphError(f"unknown record kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise GraphError(f"malformed line {line_no}: {line!r}") from exc
    if capacity is None:
        raise GraphError("missing 'capacity' header")
    return parse_partition_cells(cells, network, capacity)


def _read(fh: TextIO) -> RoadNetwork:
    network: RoadNetwork | None = None
    pending_edges: list[tuple[int, int, float]] = []
    for line_no, raw in enumerate(fh, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "directed":
                if network is not None:
                    raise GraphError("duplicate 'directed' header")
                network = RoadNetwork(directed=bool(int(fields[1])))
            elif kind == "node":
                if network is None:
                    raise GraphError("'node' before 'directed' header")
                network.add_node(int(fields[1]), float(fields[2]), float(fields[3]))
            elif kind == "edge":
                pending_edges.append((int(fields[1]), int(fields[2]), float(fields[3])))
            else:
                raise GraphError(f"unknown record kind {kind!r}")
        except (IndexError, ValueError) as exc:
            raise GraphError(f"malformed line {line_no}: {line!r}") from exc
    if network is None:
        raise GraphError("missing 'directed' header")
    for u, v, w in pending_edges:
        network.add_edge(u, v, w)
    return network
