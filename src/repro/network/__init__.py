"""Road-network substrate: graphs, generators, spatial index, page storage.

This subpackage provides everything OPAQUE needs from the "map" side of the
system: an in-memory weighted road network (:class:`RoadNetwork`), seeded
synthetic network generators standing in for TIGER/Line data, a grid spatial
index for nearest-node lookups, and a CCAM-style page store that lets search
algorithms account for disk I/O the way the paper's cost model assumes.
"""

from repro.network.graph import RoadNetwork
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.generators import (
    grid_network,
    one_way_grid_network,
    random_geometric_network,
    ring_radial_network,
    tiger_like_network,
)
from repro.network.spatial import GridSpatialIndex
from repro.network.storage import IOCounter, LRUBufferPool, PagedNetwork, PageStore
from repro.network.io import read_network, write_network
from repro.network.metrics import NetworkSummary, summarize_network
from repro.network.views import FilteredView, ReverseView, avoid_fast_roads

__all__ = [
    "RoadNetwork",
    "CSRGraph",
    "csr_snapshot",
    "grid_network",
    "one_way_grid_network",
    "random_geometric_network",
    "ring_radial_network",
    "tiger_like_network",
    "GridSpatialIndex",
    "PageStore",
    "PagedNetwork",
    "LRUBufferPool",
    "IOCounter",
    "read_network",
    "write_network",
    "NetworkSummary",
    "summarize_network",
    "FilteredView",
    "ReverseView",
    "avoid_fast_roads",
]
