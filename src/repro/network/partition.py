"""Deterministic multilevel graph partitioner (grow + refine).

The serving stack scales by splitting a road network into bounded-size
*cells* and precomputing a boundary overlay per cell (CRP-style
customizable route planning; see :mod:`repro.search.overlay`).  The same
cells double as the CCAM storage pages of
:class:`~repro.network.storage.PageStore` — pages and cells are one
implementation, so a page layout *is* a partition with matching
capacity.

Partitioning runs in two deterministic phases:

* **grow** — either *inertial* recursive bisection (the default: split
  the node set at the median of its wider coordinate axis until every
  part fits ``cell_capacity``, which yields compact, small-perimeter
  cells on spatially embedded networks) or breadth-first packing from
  unassigned seed nodes in insertion order (``method="bfs"``, the
  classic CCAM clustering; also the automatic fallback for networks
  without positions);
* **refine** — a bounded number of local-improvement rounds: a node
  moves to the neighboring cell holding more of its neighbors whenever
  the move strictly reduces the cut and the target cell has room.  Each
  move reduces the cut by at least one edge, so refinement monotonically
  improves the grow phase's cut.

Both phases look only at the adjacency *structure* (never at edge
weights), so a partition survives traffic re-weighting unchanged — the
invariant :meth:`~repro.search.overlay.OverlayGraph.recustomized` relies
on.  :func:`partition_snapshot` memoizes partitions against the
network's mutation ``version`` exactly like
:func:`~repro.network.csr.csr_snapshot` does for CSR snapshots.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass
from weakref import WeakKeyDictionary

from repro.exceptions import GraphError, UnknownNodeError
from repro.network.graph import NodeId

__all__ = [
    "Partition",
    "default_cell_capacity",
    "partition_adjacency",
    "partition_network",
    "partition_snapshot",
]


@dataclass(frozen=True)
class Partition:
    """A node partition of one road network into bounded-size cells.

    Attributes
    ----------
    cell_capacity:
        The balance bound: every cell holds at most this many nodes.
    cells:
        ``cells[i]`` is the tuple of nodes in cell ``i``, in network
        insertion order (deterministic).
    cell_of:
        Inverse mapping ``{node: cell index}``.
    boundary:
        ``boundary[i]`` is the tuple of cell ``i``'s boundary nodes — a
        node is boundary when it has an incident cut edge in either
        direction.  Subset of ``cells[i]``, same order.
    cut_edges:
        Every edge whose endpoints lie in different cells, as ``(u, v)``
        pairs in ``network.edges()`` order — each cut edge is accounted
        exactly once (an undirected edge appears once, not twice).
    """

    cell_capacity: int
    cells: tuple[tuple[NodeId, ...], ...]
    cell_of: dict[NodeId, int]
    boundary: tuple[tuple[NodeId, ...], ...]
    cut_edges: tuple[tuple[NodeId, NodeId], ...]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of cells."""
        return len(self.cells)

    @property
    def num_nodes(self) -> int:
        """Number of partitioned nodes (sum of cell sizes)."""
        return len(self.cell_of)

    @property
    def num_cut_edges(self) -> int:
        """Number of cut edges (each counted once)."""
        return len(self.cut_edges)

    @property
    def num_boundary_nodes(self) -> int:
        """Total boundary nodes over all cells."""
        return sum(len(b) for b in self.boundary)

    def cell_index(self, node: NodeId) -> int:
        """Cell index holding ``node``.

        Raises
        ------
        UnknownNodeError
            If the node was not part of the partitioned network.
        """
        try:
            return self.cell_of[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def members(self, cell: int) -> tuple[NodeId, ...]:
        """Nodes of cell ``cell``.

        Raises
        ------
        GraphError
            For an out-of-range cell index.
        """
        if not 0 <= cell < len(self.cells):
            raise GraphError(f"unknown cell index {cell}")
        return self.cells[cell]

    def __contains__(self, node: NodeId) -> bool:
        """Whether ``node`` was part of the partitioned network."""
        return node in self.cell_of

    def __repr__(self) -> str:
        return (
            f"Partition(cells={self.num_cells}, "
            f"capacity={self.cell_capacity}, "
            f"boundary={self.num_boundary_nodes}, "
            f"cut={self.num_cut_edges})"
        )

    # ------------------------------------------------------------------
    # Construction from explicit cells (shared by the partitioner and
    # the serializers in repro.network.io)
    # ------------------------------------------------------------------
    @classmethod
    def from_cells(
        cls,
        network,
        cells: Sequence[Sequence[NodeId]],
        cell_capacity: int,
    ) -> "Partition":
        """Build a :class:`Partition` from explicit cell membership.

        Validates that ``cells`` partition the network's node set exactly
        and respect ``cell_capacity``, then derives the boundary sets and
        cut edges from the network's adjacency.

        Raises
        ------
        GraphError
            If the cells do not partition the node set or violate the
            capacity bound.
        """
        cell_of: dict[NodeId, int] = {}
        for i, members in enumerate(cells):
            if len(members) > cell_capacity:
                raise GraphError(
                    f"cell {i} holds {len(members)} nodes "
                    f"(capacity {cell_capacity})"
                )
            for node in members:
                if node in cell_of:
                    raise GraphError(f"node {node!r} assigned to two cells")
                if node not in network:
                    raise UnknownNodeError(node)
                cell_of[node] = i
        if len(cell_of) != network.num_nodes:
            raise GraphError(
                f"cells cover {len(cell_of)} of {network.num_nodes} nodes"
            )
        # Derive cut edges from the adjacency scan (not ``edges()``, so
        # any read view works); the undirected dedup mirrors
        # ``RoadNetwork.edges()`` exactly — first stored direction wins.
        boundary_flags: set[NodeId] = set()
        cut_edges: list[tuple[NodeId, NodeId]] = []
        directed = bool(getattr(network, "directed", False))
        seen: set[tuple[NodeId, NodeId]] = set()
        for u in network.nodes():
            cu = cell_of[u]
            for v in network.neighbors(u):
                if cell_of[v] == cu:
                    continue
                if not directed:
                    if (v, u) in seen:
                        continue
                    seen.add((u, v))
                cut_edges.append((u, v))
                boundary_flags.add(u)
                boundary_flags.add(v)
        boundary = tuple(
            tuple(node for node in members if node in boundary_flags)
            for members in cells
        )
        return cls(
            cell_capacity=cell_capacity,
            cells=tuple(tuple(members) for members in cells),
            cell_of=cell_of,
            boundary=boundary,
            cut_edges=tuple(cut_edges),
        )


def default_cell_capacity(num_nodes: int) -> int:
    """Heuristic cell capacity for a network of ``num_nodes`` nodes.

    Grows as ``n^(2/3)`` — balancing the two-phase query's local work
    (proportional to cell size) against its overlay work (proportional
    to the total boundary, which shrinks as cells grow) — clamped to
    ``[4, 1024]``.
    """
    if num_nodes <= 4:
        return 4
    return max(4, min(1024, round(num_nodes ** (2.0 / 3.0) / 2)))


def _grow_inertial(network, capacity: int) -> list[list[NodeId]]:
    """Recursive coordinate bisection into cells of at most ``capacity``.

    Splits the node set at the median of whichever coordinate axis has
    the wider extent, recursing until every part fits.  Ties order by
    the other coordinate and then insertion rank, so the result is
    fully deterministic; on road-like networks the resulting cells are
    compact rectangles with near-minimal perimeter (= boundary size).
    """
    rank = {node: i for i, node in enumerate(network.nodes())}
    items = []
    for node in network.nodes():
        p = network.position(node)
        items.append((p.x, p.y, rank[node], node))
    cells: list[list[NodeId]] = []
    stack = [items]
    while stack:
        part = stack.pop()
        if len(part) <= capacity:
            part.sort(key=lambda item: item[2])
            cells.append([node for _x, _y, _r, node in part])
            continue
        xs = [item[0] for item in part]
        ys = [item[1] for item in part]
        if max(xs) - min(xs) >= max(ys) - min(ys):
            part.sort(key=lambda item: (item[0], item[1], item[2]))
        else:
            part.sort(key=lambda item: (item[1], item[0], item[2]))
        mid = len(part) // 2
        # Push the right half first so the left half is processed next
        # (depth-first, left-to-right => deterministic cell numbering).
        stack.append(part[mid:])
        stack.append(part[:mid])
    return cells


def _grow_bfs(network, capacity: int) -> list[list[NodeId]]:
    """BFS-pack nodes into cells of at most ``capacity`` members.

    Seeds iterate in insertion order; the BFS queue runs across cell
    boundaries so consecutive cells tile one region (the CCAM layout
    :class:`~repro.network.storage.PageStore` historically built
    inline).
    """
    unassigned = set(network.nodes())
    cells: list[list[NodeId]] = []
    for seed in network.nodes():
        if seed not in unassigned:
            continue
        queue = deque([seed])
        unassigned.discard(seed)
        current: list[NodeId] = []
        while queue:
            node = queue.popleft()
            if len(current) == capacity:
                cells.append(current)
                current = []
            current.append(node)
            for nbr in network.neighbors(node):
                if nbr in unassigned:
                    unassigned.discard(nbr)
                    queue.append(nbr)
        if current:
            cells.append(current)
    return cells


def _incident_cells(network, node: NodeId, cell_of: dict[NodeId, int], reverse):
    """Count ``node``'s neighbors per cell (both arc directions)."""
    counts: dict[int, int] = {}
    for nbr in network.neighbors(node):
        cell = cell_of[nbr]
        counts[cell] = counts.get(cell, 0) + 1
    if reverse is not None:
        for nbr in reverse.get(node, ()):
            cell = cell_of[nbr]
            counts[cell] = counts.get(cell, 0) + 1
    return counts


def _refine(network, cell_of: dict[NodeId, int], sizes: list[int],
            capacity: int, rounds: int) -> None:
    """Local-improvement rounds moving nodes to cut-reducing cells.

    A node moves to the neighboring cell holding strictly more of its
    incident edges than its current cell does, provided the target has
    room and the source keeps at least one node.  Ties break toward the
    lowest cell index; nodes iterate in insertion order — fully
    deterministic, and independent of edge weights.
    """
    reverse: dict[NodeId, list[NodeId]] | None = None
    if getattr(network, "directed", False):
        reverse = {}
        for u in network.nodes():
            for v in network.neighbors(u):
                reverse.setdefault(v, []).append(u)
    for _ in range(rounds):
        moved = False
        for node in network.nodes():
            home = cell_of[node]
            if sizes[home] <= 1:
                continue
            counts = _incident_cells(network, node, cell_of, reverse)
            internal = counts.get(home, 0)
            best_cell, best_count = home, internal
            for cell in sorted(counts):
                if cell == home:
                    continue
                count = counts[cell]
                if count > best_count and sizes[cell] < capacity:
                    best_cell, best_count = cell, count
            if best_cell != home:
                cell_of[node] = best_cell
                sizes[home] -= 1
                sizes[best_cell] += 1
                moved = True
        if not moved:
            break


def partition_network(
    network,
    cell_capacity: int | None = None,
    refine_rounds: int = 2,
    method: str = "inertial",
) -> Partition:
    """Partition ``network`` into cells of at most ``cell_capacity`` nodes.

    Runs the grow phase followed by ``refine_rounds`` cut-reduction
    rounds; see the module docstring.  The result depends only on the
    adjacency structure and node positions — never on edge weights — so
    re-weighting edges (traffic) leaves the partition unchanged.

    Parameters
    ----------
    network:
        Any object with the :class:`~repro.network.graph.RoadNetwork`
        read interface.
    cell_capacity:
        Balance bound (>= 1); defaults to
        :func:`default_cell_capacity` of the network size.
    refine_rounds:
        Local-improvement rounds after the grow phase; 0 keeps the raw
        grow-phase layout.
    method:
        ``"inertial"`` (default; coordinate bisection, falling back to
        BFS when the network exposes no positions) or ``"bfs"`` (pure
        adjacency packing — the historical ``PageStore`` layout when
        combined with ``refine_rounds=0``).

    Raises
    ------
    GraphError
        For a capacity below 1, negative ``refine_rounds``, or an
        unknown ``method``.
    """
    if cell_capacity is None:
        cell_capacity = default_cell_capacity(network.num_nodes)
    if cell_capacity < 1:
        raise GraphError("cell_capacity must be >= 1")
    if refine_rounds < 0:
        raise GraphError("refine_rounds must be >= 0")
    if method not in ("inertial", "bfs"):
        raise GraphError(f"unknown partition method {method!r}")
    if method == "inertial" and hasattr(network, "position"):
        grown = _grow_inertial(network, cell_capacity)
    else:
        grown = _grow_bfs(network, cell_capacity)
    cell_of = {
        node: i for i, members in enumerate(grown) for node in members
    }
    if refine_rounds and len(grown) > 1:
        sizes = [len(members) for members in grown]
        _refine(network, cell_of, sizes, cell_capacity, refine_rounds)
    # Rebuild cells in insertion order (deterministic regardless of the
    # moves refinement made); refinement never empties a cell but the
    # guard below keeps the numbering dense if that ever changes.
    rebuilt: list[list[NodeId]] = [[] for _ in grown]
    for node in network.nodes():
        rebuilt[cell_of[node]].append(node)
    rebuilt = [members for members in rebuilt if members]
    return Partition.from_cells(network, rebuilt, cell_capacity)


@dataclass(frozen=True)
class _FlatPoint:
    """Minimal ``x``/``y`` position record for :class:`_AdjacencyView`."""

    x: float
    y: float


class _AdjacencyView:
    """Read view over an explicit adjacency on dense int nodes ``0..n-1``.

    Adapts a plain neighbor-list structure (``adjacency[u]`` iterates
    ``u``'s neighbors) to the :class:`~repro.network.graph.RoadNetwork`
    read interface the partitioner consumes, so graphs that exist only
    as flat arrays — the nested overlay's boundary graph — can be
    partitioned without materializing a ``RoadNetwork``.
    """

    __slots__ = ("_adjacency", "_xs", "_ys", "directed")

    def __init__(self, adjacency, xs=None, ys=None, directed: bool = False):
        self._adjacency = adjacency
        self._xs = xs
        self._ys = ys
        self.directed = directed

    @property
    def num_nodes(self) -> int:
        """Number of nodes (the adjacency's length)."""
        return len(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node) -> bool:
        return isinstance(node, int) and 0 <= node < len(self._adjacency)

    def nodes(self):
        """Iterate node indices in order."""
        return iter(range(len(self._adjacency)))

    def position(self, node: int) -> _FlatPoint:
        """Position of ``node`` (requires the coordinate arrays)."""
        return _FlatPoint(self._xs[node], self._ys[node])

    def neighbors(self, node: int) -> dict[int, float]:
        """Unit-weight adjacency of ``node`` (the partitioner ignores weights)."""
        return {v: 1.0 for v in self._adjacency[node]}


def partition_adjacency(
    adjacency: Sequence,
    xs: Sequence[float] | None = None,
    ys: Sequence[float] | None = None,
    cell_capacity: int | None = None,
    refine_rounds: int = 2,
    directed: bool = False,
) -> Partition:
    """Partition an explicit adjacency over dense int nodes ``0..n-1``.

    The nested-overlay entry point: the overlay's *boundary graph* (its
    nodes are boundary indices, its edges the structural clique/cut
    adjacency) is partitioned into supercells with the same
    deterministic grow + refine machinery as the base network — and,
    like it, without ever reading weights, so the super-partition also
    survives re-weighting unchanged.  Node ids in the returned
    :class:`Partition` are the adjacency indices.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` iterates ``u``'s neighbor indices (set, list,
        or tuple).  Only structure is read, never weights.
    xs, ys:
        Optional per-node coordinates; given, the grow phase uses
        inertial bisection, otherwise BFS packing.
    cell_capacity, refine_rounds, directed:
        As :func:`partition_network`.
    """
    view = _AdjacencyView(adjacency, xs=xs, ys=ys, directed=directed)
    method = "inertial" if xs is not None and ys is not None else "bfs"
    return partition_network(
        view,
        cell_capacity=cell_capacity,
        refine_rounds=refine_rounds,
        method=method,
    )


# Per-network memo: network -> (version stamp, {(capacity, rounds): P}).
# Weak keys so a discarded network releases its partitions; the lock only
# guards the dict (a losing racer rebuilds, which is correct and rare).
_PARTITIONS: "WeakKeyDictionary[object, tuple[int, dict]]" = WeakKeyDictionary()
_PARTITION_LOCK = threading.Lock()


def partition_snapshot(
    network,
    cell_capacity: int | None = None,
    refine_rounds: int = 2,
    method: str = "inertial",
) -> Partition:
    """The (memoized) :class:`Partition` of ``network``.

    Networks exposing a ``version`` mutation stamp are partitioned once
    per (version, capacity, rounds); any mutation triggers a rebuild on
    the next call — which, for pure re-weighting, deterministically
    reproduces the same partition (the partitioner never reads weights).
    Version-less network views are partitioned per call.
    """
    if cell_capacity is None:
        cell_capacity = default_cell_capacity(network.num_nodes)
    version = getattr(network, "version", None)
    if version is None:
        return partition_network(network, cell_capacity, refine_rounds, method)
    key = (cell_capacity, refine_rounds, method)
    with _PARTITION_LOCK:
        memo = _PARTITIONS.get(network)
        if memo is not None and memo[0] == version and key in memo[1]:
            return memo[1][key]
    partition = partition_network(network, cell_capacity, refine_rounds, method)
    with _PARTITION_LOCK:
        memo = _PARTITIONS.get(network)
        if memo is None or memo[0] != version:
            memo = (version, {})
            _PARTITIONS[network] = memo
        memo[1][key] = partition
    return partition
