"""CCAM-style paged storage simulator with I/O accounting.

The paper's cost argument (Section III-B, citing Shekhar & Liu's CCAM [9])
assumes nodes and their adjacency lists are clustered on disk pages, so the
I/O cost of a Dijkstra search is proportional to the *area* its spanning
tree touches.  This module reproduces that storage model:

* :class:`PageStore` partitions a network's nodes into fixed-capacity pages
  via the shared graph partitioner (:mod:`repro.network.partition` —
  neighbors land on the same page when possible, the essence of CCAM).
  Pages *are* partition cells: a ``PageStore`` with capacity ``c`` holds
  exactly the cells of ``partition_snapshot(network, c)``, so the storage
  simulator and the partition-overlay engine share one clustering
  implementation.
* :class:`LRUBufferPool` caches a bounded number of pages and reports
  faults.
* :class:`PagedNetwork` wraps a :class:`RoadNetwork` so every adjacency-list
  access charges the buffer pool; search algorithms run against it
  unchanged and their :class:`~repro.search.result.SearchStats` pick up the
  fault counts.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.exceptions import StorageError, UnknownNodeError
from repro.network.graph import NodeId, Point, RoadNetwork
from repro.network.partition import partition_snapshot

__all__ = ["IOCounter", "PageStore", "LRUBufferPool", "PagedNetwork"]


@dataclass(slots=True)
class IOCounter:
    """Mutable tally of logical accesses and physical page reads."""

    logical_accesses: int = 0
    page_faults: int = 0
    pages_touched: set[int] = field(default_factory=set)

    def record(self, page_id: int, fault: bool) -> None:
        """Record one logical access to ``page_id``; ``fault`` marks a read."""
        self.logical_accesses += 1
        self.pages_touched.add(page_id)
        if fault:
            self.page_faults += 1

    def reset(self) -> None:
        """Zero all counters."""
        self.logical_accesses = 0
        self.page_faults = 0
        self.pages_touched.clear()

    @property
    def distinct_pages(self) -> int:
        """Number of distinct pages touched since the last reset."""
        return len(self.pages_touched)


class PageStore:
    """Connectivity clustering of nodes into fixed-capacity pages.

    Parameters
    ----------
    network:
        Network whose nodes are laid out.
    page_capacity:
        Maximum nodes per page.  Real CCAM packs by record size; a node
        count is the standard simulator simplification.

    Notes
    -----
    The layout is the shared partitioner's
    (:func:`repro.network.partition.partition_snapshot`): spatially and
    topologically close nodes share pages, which is what makes page
    faults proportional to the geographic area of a search — the
    behaviour Lemma 1's I/O bound relies on.  Because pages are exactly
    partition cells, the partition-overlay engine's cells and the
    storage pages coincide whenever their capacities match.
    """

    def __init__(self, network: RoadNetwork, page_capacity: int = 64) -> None:
        if page_capacity < 1:
            raise StorageError("page_capacity must be >= 1")
        self._capacity = page_capacity
        partition = partition_snapshot(network, cell_capacity=page_capacity)
        self._pages: list[list[NodeId]] = [
            list(cell) for cell in partition.cells
        ]
        self._page_of: dict[NodeId, int] = dict(partition.cell_of)

    @property
    def num_pages(self) -> int:
        """Total number of pages."""
        return len(self._pages)

    @property
    def page_capacity(self) -> int:
        """Maximum nodes per page."""
        return self._capacity

    def page_of(self, node: NodeId) -> int:
        """Page id holding ``node``.

        Raises
        ------
        UnknownNodeError
            If the node was not part of the stored network.
        """
        try:
            return self._page_of[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def page_members(self, page_id: int) -> list[NodeId]:
        """Nodes stored on ``page_id``."""
        if not 0 <= page_id < len(self._pages):
            raise StorageError(f"unknown page id {page_id}")
        return list(self._pages[page_id])


class LRUBufferPool:
    """Least-recently-used page cache.

    Parameters
    ----------
    capacity:
        Number of pages held in memory.  ``capacity=0`` means every access
        faults (cold storage); a capacity at least the page count means only
        compulsory faults occur.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise StorageError("buffer pool capacity must be >= 0")
        self._capacity = capacity
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        """Number of page frames."""
        return self._capacity

    def access(self, page_id: int) -> bool:
        """Touch ``page_id``; return ``True`` if the access faulted."""
        if self._capacity == 0:
            self.misses += 1
            return True
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self.hits += 1
            return False
        self.misses += 1
        if len(self._resident) >= self._capacity:
            self._resident.popitem(last=False)
        self._resident[page_id] = None
        return True

    def clear(self) -> None:
        """Evict everything and zero the hit/miss counters."""
        self._resident.clear()
        self.hits = 0
        self.misses = 0

    @property
    def resident_pages(self) -> list[int]:
        """Currently cached page ids, LRU first."""
        return list(self._resident)


class PagedNetwork:
    """Read view of a :class:`RoadNetwork` that charges page I/O per access.

    Exposes the subset of the :class:`RoadNetwork` interface the search
    algorithms use (``neighbors``, ``position``, ``euclidean_distance``,
    containment, size) so it can be passed anywhere a network is expected.

    Parameters
    ----------
    network:
        Backing network.
    page_capacity:
        Nodes per page for the :class:`PageStore` layout.
    buffer_capacity:
        Page frames in the :class:`LRUBufferPool`.
    """

    def __init__(
        self,
        network: RoadNetwork,
        page_capacity: int = 64,
        buffer_capacity: int = 32,
    ) -> None:
        self._network = network
        self._store = PageStore(network, page_capacity=page_capacity)
        self._pool = LRUBufferPool(buffer_capacity)
        self._io = IOCounter()

    # -- accounting ----------------------------------------------------
    @property
    def io(self) -> IOCounter:
        """Live I/O counter; reset it between measured operations."""
        return self._io

    @property
    def store(self) -> PageStore:
        """The underlying page layout."""
        return self._store

    @property
    def buffer_pool(self) -> LRUBufferPool:
        """The underlying LRU pool."""
        return self._pool

    def reset_io(self) -> None:
        """Clear the I/O counter and drop all cached pages."""
        self._io.reset()
        self._pool.clear()

    def _touch(self, node: NodeId) -> None:
        page = self._store.page_of(node)
        fault = self._pool.access(page)
        self._io.record(page, fault)

    # -- RoadNetwork read interface -------------------------------------
    @property
    def directed(self) -> bool:
        return self._network.directed

    @property
    def num_nodes(self) -> int:
        return self._network.num_nodes

    @property
    def num_edges(self) -> int:
        return self._network.num_edges

    def __contains__(self, node: NodeId) -> bool:
        return node in self._network

    def __len__(self) -> int:
        return len(self._network)

    def nodes(self) -> Iterator[NodeId]:
        return self._network.nodes()

    def neighbors(self, node: NodeId) -> dict[NodeId, float]:
        """Adjacency of ``node``; charges one page access."""
        self._touch(node)
        return self._network.neighbors(node)

    def position(self, node: NodeId) -> Point:
        """Node position; free (coordinates ride along with the page)."""
        return self._network.position(node)

    def euclidean_distance(self, u: NodeId, v: NodeId) -> float:
        return self._network.euclidean_distance(u, v)

    def __repr__(self) -> str:
        return (
            f"PagedNetwork(nodes={self.num_nodes}, pages={self._store.num_pages}, "
            f"buffer={self._pool.capacity})"
        )
