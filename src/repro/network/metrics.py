"""Descriptive statistics for road networks.

Used by tests and benchmarks to verify that the synthetic generators have
road-like structure (low average degree, short edges, one component) before
any experiment trusts them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.network.graph import RoadNetwork

__all__ = ["NetworkSummary", "summarize_network"]


@dataclass(frozen=True, slots=True)
class NetworkSummary:
    """Snapshot of a network's structure."""

    num_nodes: int
    num_edges: int
    num_components: int
    average_degree: float
    max_degree: int
    average_edge_weight: float
    max_edge_weight: float
    bounding_box: tuple[float, float, float, float]

    @property
    def is_road_like(self) -> bool:
        """Heuristic check: sparse, low-degree, connected.

        Real road networks have average degree around 2–4 and a single
        component; generators should satisfy this.
        """
        return (
            self.num_components == 1
            and self.average_degree <= 8.0
            and self.max_degree <= 16
        )


def summarize_network(network: RoadNetwork) -> NetworkSummary:
    """Compute a :class:`NetworkSummary` for ``network``."""
    if network.num_nodes == 0:
        raise ValueError("cannot summarize an empty network")
    degrees = [network.degree(n) for n in network.nodes()]
    weights = [w for _u, _v, w in network.edges()]
    return NetworkSummary(
        num_nodes=network.num_nodes,
        num_edges=network.num_edges,
        num_components=len(network.connected_components()),
        average_degree=sum(degrees) / len(degrees),
        max_degree=max(degrees),
        average_edge_weight=(sum(weights) / len(weights)) if weights else 0.0,
        max_edge_weight=max(weights) if weights else 0.0,
        bounding_box=network.bounding_box(),
    )


def sample_network_diameter(
    network: RoadNetwork, samples: int = 16, seed: int = 0
) -> float:
    """Estimate the Euclidean diameter by sampling node pairs.

    This is a geometric (not graph-distance) diameter — enough for sizing
    obfuscation radii in workload generators.
    """
    nodes = list(network.nodes())
    if len(nodes) < 2:
        return 0.0
    rng = random.Random(seed)
    best = 0.0
    for _ in range(samples):
        u = rng.choice(nodes)
        v = rng.choice(nodes)
        best = max(best, network.euclidean_distance(u, v))
    # Also check the bounding box corners as an upper-bound anchor.
    min_x, min_y, max_x, max_y = network.bounding_box()
    return max(best, math.hypot(max_x - min_x, max_y - min_y) * 0.5)
