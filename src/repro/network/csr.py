"""Immutable flat-array (CSR) snapshots of road networks.

Every search engine in this package originally walked the
dict-of-dict adjacency of :class:`~repro.network.graph.RoadNetwork` —
per-neighbor hashing and tuple unpacking on the hottest loop of the
system.  :class:`CSRGraph` freezes a network into compressed-sparse-row
arrays (``offsets``/``targets``/``weights`` in the standard layout: the
out-arcs of node ``i`` occupy positions ``offsets[i]:offsets[i+1]``),
with nodes renamed to dense integer indices.  The index-space kernels in
:mod:`repro.search.kernels` run over these arrays with plain integer
arithmetic and ``heapq``, which is where the ``*-csr`` engines get their
speedup.

Snapshots are immutable and cheap to build (one pass over the
adjacency), and :func:`csr_snapshot` memoizes them against the network's
``version`` mutation stamp, so repeated queries on an unchanged network
reuse one snapshot while any mutation transparently triggers a rebuild.

Arrays are stdlib :mod:`array` values (8-byte ints, C doubles) — compact
and allocation-free to index.  When numpy is installed,
:meth:`CSRGraph.as_numpy` exposes zero-copy ndarray views for vectorized
analysis; the kernels themselves never require numpy.
"""

from __future__ import annotations

import threading
from array import array
from collections.abc import Iterator
from weakref import WeakKeyDictionary

from repro.exceptions import UnknownNodeError
from repro.network.graph import NodeId, RoadNetwork

__all__ = ["CSRGraph", "csr_snapshot"]


class CSRGraph:
    """A road network frozen into compressed-sparse-row arrays.

    Attributes
    ----------
    node_ids:
        ``node_ids[i]`` is the original node id of index ``i`` (insertion
        order of the source network).
    index_of:
        Inverse mapping ``{node_id: index}``.
    offsets, targets, weights:
        Forward adjacency in CSR form: arcs leaving node ``i`` are
        ``targets[offsets[i]:offsets[i+1]]`` with matching ``weights``.
        Undirected source networks store both arc directions (exactly as
        their dict adjacency does).
    roffsets, rtargets, rweights:
        Reverse adjacency (arcs *entering* each node) for backward
        searches.  For undirected networks these alias the forward
        arrays — the reverse view is free.
    xs, ys:
        Node coordinates by index (kept for heuristic kernels and for
        the :meth:`to_network` round trip).
    directed:
        Directedness of the source network.

    Instances never mutate; build them with :meth:`from_network` or the
    memoizing :func:`csr_snapshot`.
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "offsets",
        "targets",
        "weights",
        "roffsets",
        "rtargets",
        "rweights",
        "xs",
        "ys",
        "directed",
        "_kview",
        "_rkview",
    )

    def __init__(
        self,
        node_ids: tuple[NodeId, ...],
        index_of: dict[NodeId, int],
        offsets: array,
        targets: array,
        weights: array,
        xs: array,
        ys: array,
        directed: bool,
        roffsets: array | None = None,
        rtargets: array | None = None,
        rweights: array | None = None,
    ) -> None:
        self.node_ids = node_ids
        self.index_of = index_of
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.xs = xs
        self.ys = ys
        self.directed = directed
        # Undirected adjacency already contains both arc directions, so
        # the reverse view is the forward view (aliased, not copied).
        self.roffsets = offsets if roffsets is None else roffsets
        self.rtargets = targets if rtargets is None else rtargets
        self.rweights = weights if rweights is None else rweights
        self._kview: tuple[list, list, list] | None = None
        self._rkview: tuple[list, list, list] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network) -> "CSRGraph":
        """Freeze any network with the ``RoadNetwork`` read interface.

        One pass over ``network.neighbors`` per node; neighbor order is
        preserved (dict insertion order), so the kernels relax arcs in
        the same order the dict engines iterate them.
        """
        node_ids = tuple(network.nodes())
        index_of = {node: i for i, node in enumerate(node_ids)}
        offsets = array("q", [0])
        targets = array("q")
        weights = array("d")
        xs = array("d")
        ys = array("d")
        directed = bool(getattr(network, "directed", False))
        for node in node_ids:
            p = network.position(node)
            xs.append(p.x)
            ys.append(p.y)
            for nbr, w in network.neighbors(node).items():
                targets.append(index_of[nbr])
                weights.append(w)
            offsets.append(len(targets))
        roffsets = rtargets = rweights = None
        if directed:
            roffsets, rtargets, rweights = _reverse_csr(
                len(node_ids), offsets, targets, weights
            )
        return cls(
            node_ids=node_ids,
            index_of=index_of,
            offsets=offsets,
            targets=targets,
            weights=weights,
            xs=xs,
            ys=ys,
            directed=directed,
            roffsets=roffsets,
            rtargets=rtargets,
            rweights=rweights,
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.node_ids)

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (an undirected edge counts twice)."""
        return len(self.targets)

    def __len__(self) -> int:
        """Number of nodes (same as :attr:`num_nodes`)."""
        return len(self.node_ids)

    def __contains__(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` is part of the snapshot."""
        return node_id in self.index_of

    def index(self, node_id: NodeId) -> int:
        """Dense index of ``node_id``.

        Raises
        ------
        UnknownNodeError
            If the node is not part of the snapshot.
        """
        try:
            return self.index_of[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def degree(self, i: int) -> int:
        """Out-degree of index ``i``."""
        return self.offsets[i + 1] - self.offsets[i]

    def arcs_from(self, i: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(target_index, weight)`` over the out-arcs of ``i``."""
        for e in range(self.offsets[i], self.offsets[i + 1]):
            yield self.targets[e], self.weights[e]

    def kernel_view(self) -> tuple[list, list, list]:
        """Forward ``(offsets, targets, weights)`` as plain lists.

        CPython indexes a list of preboxed ints/floats faster than an
        :mod:`array` buffer (which boxes a fresh object per access), so
        the search kernels read through this lazily built mirror.  The
        compact arrays remain the canonical storage.

        Safe under concurrent first calls: the completed tuple is
        published with one slot assignment behind a lock, so dispatcher
        worker threads racing here share a single O(m) build and every
        caller gets the same tuple object.
        """
        view = self._kview
        if view is None:
            with _KVIEW_LOCK:
                view = self._kview
                if view is None:
                    view = (
                        list(self.offsets),
                        list(self.targets),
                        list(self.weights),
                    )
                    self._kview = view
        return view

    def reverse_kernel_view(self) -> tuple[list, list, list]:
        """Reverse ``(offsets, targets, weights)`` as plain lists.

        Aliases :meth:`kernel_view` for undirected snapshots.  Shares
        the same single-build guarantee as :meth:`kernel_view`.
        """
        view = self._rkview
        if view is None:
            if self.rtargets is self.targets:
                view = self.kernel_view()
                with _KVIEW_LOCK:
                    if self._rkview is None:
                        self._rkview = view
                    view = self._rkview
            else:
                with _KVIEW_LOCK:
                    view = self._rkview
                    if view is None:
                        view = (
                            list(self.roffsets),
                            list(self.rtargets),
                            list(self.rweights),
                        )
                        self._rkview = view
        return view

    def as_numpy(self) -> dict[str, object]:
        """Read-only zero-copy numpy views of the flat arrays.

        Returns
        -------
        dict
            ``{"offsets", "targets", "weights", "xs", "ys"}`` ndarray
            views sharing memory with the snapshot.  Every view is
            marked non-writable: the underlying buffers are the
            memoized per-version snapshot shared by all queries, so a
            writable alias would silently corrupt every future search
            on this network version.  Mutating a view raises
            ``ValueError``.

        Raises
        ------
        ImportError
            When numpy is not installed (the kernels never need it).
        """
        import numpy as np

        views = {
            "offsets": np.frombuffer(self.offsets, dtype=np.int64),
            "targets": np.frombuffer(self.targets, dtype=np.int64),
            "weights": np.frombuffer(self.weights, dtype=np.float64),
            "xs": np.frombuffer(self.xs, dtype=np.float64),
            "ys": np.frombuffer(self.ys, dtype=np.float64),
        }
        for arr in views.values():
            arr.flags.writeable = False
        return views

    # ------------------------------------------------------------------
    # Round trip
    # ------------------------------------------------------------------
    def to_network(self) -> RoadNetwork:
        """Rebuild an equivalent :class:`RoadNetwork` from the arrays.

        The inverse of :meth:`from_network`: node ids, positions,
        directedness, edges and weights all round-trip exactly (an
        undirected snapshot stores both arc directions but emits each
        edge once).
        """
        net = RoadNetwork(directed=self.directed)
        for i, node in enumerate(self.node_ids):
            net.add_node(node, self.xs[i], self.ys[i])
        offsets, targets, weights = self.offsets, self.targets, self.weights
        for i, node in enumerate(self.node_ids):
            for e in range(offsets[i], offsets[i + 1]):
                j = targets[e]
                if not self.directed and j < i:
                    continue  # the (j, i) arc already added this edge
                net.add_edge(node, self.node_ids[j], weights[e])
        return net

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"CSRGraph({kind}, nodes={self.num_nodes}, arcs={self.num_arcs})"


def _reverse_csr(
    n: int, offsets: array, targets: array, weights: array
) -> tuple[array, array, array]:
    """Transpose a CSR adjacency (counting sort by target node)."""
    counts = [0] * (n + 1)
    for t in targets:
        counts[t + 1] += 1
    roffsets = array("q", [0] * (n + 1))
    total = 0
    for i in range(n):
        total += counts[i + 1]
        roffsets[i + 1] = total
    cursor = list(roffsets[:n])
    rtargets = array("q", bytes(8 * len(targets)))
    rweights = array("d", bytes(8 * len(targets)))
    for u in range(n):
        for e in range(offsets[u], offsets[u + 1]):
            v = targets[e]
            slot = cursor[v]
            rtargets[slot] = u
            rweights[slot] = weights[e]
            cursor[v] = slot + 1
    return roffsets, rtargets, rweights


# Guards the lazy kernel-view builds.  One process-wide lock (not per
# instance) keeps CSRGraph slot-only and picklable; builds are rare —
# once per snapshot — so contention is negligible.
_KVIEW_LOCK = threading.Lock()

# Per-network memo: network -> (version stamp, snapshot).  Weak keys so a
# discarded network releases its snapshot; the lock only guards the dict
# (a losing racer simply rebuilds, which is correct and rare).
_SNAPSHOTS: "WeakKeyDictionary[object, tuple[int, CSRGraph]]" = WeakKeyDictionary()
_SNAPSHOT_LOCK = threading.Lock()


def csr_snapshot(network) -> CSRGraph:
    """The (memoized) :class:`CSRGraph` snapshot of ``network``.

    Networks exposing a ``version`` mutation stamp (every
    :class:`~repro.network.graph.RoadNetwork`) are snapshotted once per
    version: repeated calls on an unchanged network return the same
    object, and any mutation — new node, new edge, reweighting — bumps
    the version and triggers a rebuild on the next call.  Version-less
    network views are rebuilt per call (they are cheap wrappers whose
    base may mutate invisibly).
    """
    version = getattr(network, "version", None)
    if version is None:
        return CSRGraph.from_network(network)
    with _SNAPSHOT_LOCK:
        memo = _SNAPSHOTS.get(network)
    if memo is not None and memo[0] == version:
        return memo[1]
    snapshot = CSRGraph.from_network(network)
    with _SNAPSHOT_LOCK:
        _SNAPSHOTS[network] = (version, snapshot)
    return snapshot
