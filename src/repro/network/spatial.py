"""Grid spatial index over road-network nodes.

The obfuscator needs fast geometric lookups to pick fake endpoints ("a node
about distance r from here", "a random node inside this box") and the
cloaking baseline needs "all nodes inside a cell".  A uniform-grid bucket
index is simple, dependency-free and fast enough for the network sizes the
experiments use.
"""

from __future__ import annotations

import math
import random

from repro.exceptions import UnknownNodeError
from repro.network.graph import NodeId, Point, RoadNetwork

__all__ = ["GridSpatialIndex"]


class GridSpatialIndex:
    """Uniform grid of node buckets supporting nearest/range/ring queries.

    Parameters
    ----------
    network:
        The network to index.  The index snapshots node positions at
        construction time; mutate the network afterwards and the index is
        stale.
    cell_size:
        Bucket side length.  Defaults to a value that puts a handful of
        nodes in each bucket (bounding-box area / node count, square-rooted).
    """

    def __init__(self, network: RoadNetwork, cell_size: float | None = None) -> None:
        if network.num_nodes == 0:
            raise ValueError("cannot index an empty network")
        self._network = network
        min_x, min_y, max_x, max_y = network.bounding_box()
        self._origin = (min_x, min_y)
        if cell_size is None:
            # Scale to put O(1) nodes per cell; the span-based formula stays
            # sane for degenerate (collinear or single-point) layouts.
            span = max(max_x - min_x, max_y - min_y)
            if span <= 0:
                span = 1.0
            cell_size = 2.0 * span / math.sqrt(network.num_nodes)
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._cell = cell_size
        self._buckets: dict[tuple[int, int], list[NodeId]] = {}
        for node in network.nodes():
            self._buckets.setdefault(self._key(network.position(node)), []).append(node)
        keys = list(self._buckets)
        self._key_bounds = (
            min(k[0] for k in keys),
            min(k[1] for k in keys),
            max(k[0] for k in keys),
            max(k[1] for k in keys),
        )

    @property
    def cell_size(self) -> float:
        """Bucket side length in coordinate units."""
        return self._cell

    def _key(self, p: Point) -> tuple[int, int]:
        return (
            int((p.x - self._origin[0]) // self._cell),
            int((p.y - self._origin[1]) // self._cell),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest_node(self, x: float, y: float) -> NodeId:
        """Node whose position is closest to ``(x, y)``.

        Scans only *populated* buckets, ordered by the minimum possible
        distance from the query point to each bucket's rectangle, pruning
        once that lower bound exceeds the best node found.  This is exact
        (the bound is a true lower bound) and stays fast even for query
        points far outside the indexed region, where ring expansion from
        the query cell would walk millions of empty cells.
        """
        target = Point(float(x), float(y))
        ranked = sorted(
            self._buckets, key=lambda cell: self._cell_lower_bound(cell, target)
        )
        best: NodeId | None = None
        best_dist = math.inf
        for cell in ranked:
            if self._cell_lower_bound(cell, target) > best_dist:
                break
            for node in self._buckets[cell]:
                d = self._network.position(node).distance_to(target)
                if d < best_dist:
                    best, best_dist = node, d
        if best is None:  # pragma: no cover - impossible on non-empty index
            raise RuntimeError("spatial index is empty")
        return best

    def _cell_lower_bound(self, cell: tuple[int, int], target: Point) -> float:
        """Smallest possible distance from ``target`` to any point in the
        rectangle covered by ``cell``."""
        min_x = self._origin[0] + cell[0] * self._cell
        min_y = self._origin[1] + cell[1] * self._cell
        dx = max(min_x - target.x, 0.0, target.x - (min_x + self._cell))
        dy = max(min_y - target.y, 0.0, target.y - (min_y + self._cell))
        return math.hypot(dx, dy)

    def nodes_in_box(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> list[NodeId]:
        """All nodes with positions inside the closed axis-aligned box."""
        lo = self._key(Point(min_x, min_y))
        hi = self._key(Point(max_x, max_y))
        # Clamp to the populated key range so oversized boxes stay cheap.
        lo = (max(lo[0], self._key_bounds[0]), max(lo[1], self._key_bounds[1]))
        hi = (min(hi[0], self._key_bounds[2]), min(hi[1], self._key_bounds[3]))
        out: list[NodeId] = []
        for bx in range(lo[0], hi[0] + 1):
            for by in range(lo[1], hi[1] + 1):
                for node in self._buckets.get((bx, by), ()):
                    p = self._network.position(node)
                    if min_x <= p.x <= max_x and min_y <= p.y <= max_y:
                        out.append(node)
        return out

    def nodes_within(self, x: float, y: float, radius: float) -> list[NodeId]:
        """All nodes within ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        center = Point(float(x), float(y))
        candidates = self.nodes_in_box(x - radius, y - radius, x + radius, y + radius)
        return [
            n
            for n in candidates
            if self._network.position(n).distance_to(center) <= radius
        ]

    def nodes_in_ring(
        self, x: float, y: float, inner: float, outer: float
    ) -> list[NodeId]:
        """All nodes at distance in ``[inner, outer]`` from ``(x, y)``."""
        if inner < 0 or outer < inner:
            raise ValueError("need 0 <= inner <= outer")
        center = Point(float(x), float(y))
        candidates = self.nodes_in_box(x - outer, y - outer, x + outer, y + outer)
        return [
            n
            for n in candidates
            if inner <= self._network.position(n).distance_to(center) <= outer
        ]

    def random_node_near(
        self,
        x: float,
        y: float,
        radius: float,
        rng: random.Random,
        exclude: set[NodeId] | None = None,
    ) -> NodeId | None:
        """A uniform random node within ``radius``, or ``None`` if none exist.

        ``exclude`` removes nodes from consideration (e.g. the true endpoint
        itself when picking fakes).
        """
        candidates = self.nodes_within(x, y, radius)
        if exclude:
            candidates = [n for n in candidates if n not in exclude]
        if not candidates:
            return None
        return rng.choice(candidates)

    def snap(self, node: NodeId) -> tuple[int, int]:
        """The grid cell of an existing node (used by the cloaking baseline)."""
        if node not in self._network:
            raise UnknownNodeError(node)
        return self._key(self._network.position(node))

    def cell_members(self, cell: tuple[int, int]) -> list[NodeId]:
        """Nodes stored in a grid cell (empty list for unknown cells)."""
        return list(self._buckets.get(cell, ()))

