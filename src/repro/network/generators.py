"""Seeded synthetic road-network generators.

The paper evaluates on TIGER/Line road maps, which we cannot ship.  These
generators produce networks with the structural properties the OPAQUE
mechanisms actually depend on — planar spatial embedding, low average degree
(2–4 like real road graphs), and edge weights equal to (or proportional to)
Euclidean length so that search cost grows with geographic area, which is
the premise of the paper's Lemma 1 cost model.

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import math
import random

from repro.network.graph import RoadNetwork

__all__ = [
    "grid_network",
    "metro_network",
    "one_way_grid_network",
    "random_geometric_network",
    "ring_radial_network",
    "scale_free_network",
    "tiger_like_network",
]


def grid_network(
    width: int,
    height: int,
    spacing: float = 1.0,
    perturbation: float = 0.0,
    drop_fraction: float = 0.0,
    seed: int = 0,
) -> RoadNetwork:
    """Manhattan-style grid with optional jitter and random street closures.

    Parameters
    ----------
    width, height:
        Number of intersections along each axis (both must be >= 1).
    spacing:
        Distance between adjacent intersections before jitter.
    perturbation:
        Maximum coordinate jitter as a fraction of ``spacing`` (0 disables).
        Node positions move, edge weights follow the new Euclidean lengths.
    drop_fraction:
        Fraction of edges to remove at random, simulating dead ends and
        one-off closures.  The result is re-restricted to its largest
        connected component so queries always have answers.
    seed:
        RNG seed; identical arguments always produce an identical network.

    Returns
    -------
    RoadNetwork
        Undirected network with ``width * height`` nodes (fewer if
        ``drop_fraction`` disconnects some).
    """
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be >= 1")
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError("drop_fraction must be in [0, 1)")
    if perturbation < 0:
        raise ValueError("perturbation must be non-negative")
    rng = random.Random(seed)
    net = RoadNetwork(directed=False)
    jitter = perturbation * spacing

    def node_id(col: int, row: int) -> int:
        return row * width + col

    for row in range(height):
        for col in range(width):
            dx = rng.uniform(-jitter, jitter) if jitter else 0.0
            dy = rng.uniform(-jitter, jitter) if jitter else 0.0
            net.add_node(node_id(col, row), col * spacing + dx, row * spacing + dy)
    for row in range(height):
        for col in range(width):
            if col + 1 < width:
                net.add_edge(node_id(col, row), node_id(col + 1, row))
            if row + 1 < height:
                net.add_edge(node_id(col, row), node_id(col, row + 1))
    if drop_fraction:
        edges = list(net.edges())
        rng.shuffle(edges)
        to_drop = int(len(edges) * drop_fraction)
        for u, v, _w in edges[:to_drop]:
            net.remove_edge(u, v)
        net = net.largest_component_subgraph()
    return net


def metro_network(
    num_nodes: int,
    spacing: float = 1.0,
    perturbation: float = 0.3,
    core_drop: float = 0.05,
    fringe_drop: float = 0.45,
    arterial_every: int = 16,
    arterial_speedup: float = 2.0,
    seed: int = 0,
) -> RoadNetwork:
    """Metro-region road network at up to ~10⁶ nodes, built in O(n).

    The ROADMAP's "metro region" scale proof substrate: a jittered street
    grid covering ``ceil(sqrt(num_nodes))²`` intersections whose edge
    *survival* falls off with distance from the city center — the core
    keeps its full Manhattan mesh (average degree near 4) while the
    fringe decays toward sparse suburban tendrils (degree 2–3, dead
    ends), reproducing the degree distribution real TIGER/Line metro
    extracts show.  Every ``arterial_every``-th row and column is an
    arterial whose traversal cost is Euclidean length divided by
    ``arterial_speedup`` (travel time, not distance); all other weights
    are Euclidean lengths over the jittered coordinates.

    The result is re-restricted to its largest connected component, so
    the node count is *approximately* ``num_nodes`` (the survival rates
    above keep the loss to a few percent).  Fully deterministic per
    ``(num_nodes, seed)``.

    Parameters
    ----------
    num_nodes:
        Target intersection count (>= 4); the grid side is
        ``ceil(sqrt(num_nodes))``.
    spacing:
        Street spacing before jitter.
    perturbation:
        Coordinate jitter as a fraction of ``spacing``.
    core_drop:
        Edge-removal probability at the city center.
    fringe_drop:
        Edge-removal probability at the map corners; removal probability
        interpolates linearly in radial distance between the two (both
        in ``[0, 1)``; arterials are never dropped).
    arterial_every:
        Grid period of the fast arterial rows/columns (0 disables).
    arterial_speedup:
        How much faster arterials are than local streets (>= 1).
    seed:
        RNG seed.
    """
    if num_nodes < 4:
        raise ValueError("num_nodes must be >= 4")
    if not (0.0 <= core_drop < 1.0 and 0.0 <= fringe_drop < 1.0):
        raise ValueError("drop probabilities must be in [0, 1)")
    if perturbation < 0:
        raise ValueError("perturbation must be non-negative")
    if arterial_speedup < 1.0:
        raise ValueError("arterial_speedup must be >= 1")
    rng = random.Random(seed)
    side = math.isqrt(num_nodes - 1) + 1
    net = RoadNetwork(directed=False)
    jitter = perturbation * spacing
    center = (side - 1) / 2.0
    # radial distance normalized so the map corners sit at 1.0
    corner = math.hypot(center, center) or 1.0

    def node_id(col: int, row: int) -> int:
        return row * side + col

    for row in range(side):
        for col in range(side):
            dx = rng.uniform(-jitter, jitter) if jitter else 0.0
            dy = rng.uniform(-jitter, jitter) if jitter else 0.0
            net.add_node(
                node_id(col, row), col * spacing + dx, row * spacing + dy
            )

    def is_arterial(col: int, row: int, horizontal: bool) -> bool:
        if not arterial_every:
            return False
        return (row if horizontal else col) % arterial_every == 0

    drop_span = fringe_drop - core_drop
    for row in range(side):
        for col in range(side):
            u = node_id(col, row)
            radial = math.hypot(col - center, row - center) / corner
            p_drop = core_drop + drop_span * radial
            for dcol, drow in ((1, 0), (0, 1)):
                col2, row2 = col + dcol, row + drow
                if col2 >= side or row2 >= side:
                    continue
                v = node_id(col2, row2)
                arterial = is_arterial(col, row, horizontal=dcol == 1)
                if not arterial and rng.random() < p_drop:
                    continue
                length = net.euclidean_distance(u, v)
                net.add_edge(
                    u, v, length / arterial_speedup if arterial else length
                )
    return net.largest_component_subgraph()


def one_way_grid_network(
    width: int,
    height: int,
    spacing: float = 1.0,
    perturbation: float = 0.0,
    seed: int = 0,
) -> RoadNetwork:
    """Manhattan-style *directed* grid with alternating one-way streets.

    Interior rows alternate east/west, interior columns alternate
    north/south (like Manhattan avenues and streets); the perimeter is a
    directed clockwise loop, which guarantees strong connectivity for any
    ``width, height >= 2`` (verified at build time).

    Returns
    -------
    RoadNetwork
        A directed, strongly connected network — the substrate for the
        one-way-street tests of the search algorithms and processors.
    """
    if width < 2 or height < 2:
        raise ValueError("one-way grids need width, height >= 2")
    if perturbation < 0:
        raise ValueError("perturbation must be non-negative")
    rng = random.Random(seed)
    net = RoadNetwork(directed=True)
    jitter = perturbation * spacing

    def node_id(col: int, row: int) -> int:
        return row * width + col

    for row in range(height):
        for col in range(width):
            dx = rng.uniform(-jitter, jitter) if jitter else 0.0
            dy = rng.uniform(-jitter, jitter) if jitter else 0.0
            net.add_node(node_id(col, row), col * spacing + dx, row * spacing + dy)

    last_col = width - 1
    last_row = height - 1
    # Perimeter: clockwise directed loop (east on top, south on right...).
    for col in range(last_col):
        net.add_edge(node_id(col, 0), node_id(col + 1, 0))
        net.add_edge(node_id(col + 1, last_row), node_id(col, last_row))
    for row in range(last_row):
        net.add_edge(node_id(last_col, row), node_id(last_col, row + 1))
        net.add_edge(node_id(0, row + 1), node_id(0, row))
    # Interior rows alternate east/west.
    for row in range(1, last_row):
        for col in range(last_col):
            if row % 2 == 0:
                net.add_edge(node_id(col, row), node_id(col + 1, row))
            else:
                net.add_edge(node_id(col + 1, row), node_id(col, row))
    # Interior columns alternate north/south.
    for col in range(1, last_col):
        for row in range(last_row):
            if col % 2 == 0:
                net.add_edge(node_id(col, row), node_id(col, row + 1))
            else:
                net.add_edge(node_id(col, row + 1), node_id(col, row))
    if not net.is_strongly_connected():  # pragma: no cover - by construction
        raise RuntimeError("one-way grid construction lost strong connectivity")
    return net


def random_geometric_network(
    num_nodes: int,
    radius: float,
    extent: float = 1.0,
    seed: int = 0,
) -> RoadNetwork:
    """Random geometric graph: nodes uniform in a square, edges within radius.

    Edges connect node pairs closer than ``radius``; weights are Euclidean.
    The output is restricted to its largest connected component.

    A cell-bucket sweep keeps construction near-linear so benchmarks can use
    tens of thousands of nodes.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if radius <= 0 or extent <= 0:
        raise ValueError("radius and extent must be positive")
    rng = random.Random(seed)
    net = RoadNetwork(directed=False)
    positions: list[tuple[float, float]] = []
    for node in range(num_nodes):
        x = rng.uniform(0.0, extent)
        y = rng.uniform(0.0, extent)
        positions.append((x, y))
        net.add_node(node, x, y)

    cell = radius
    buckets: dict[tuple[int, int], list[int]] = {}
    for node, (x, y) in enumerate(positions):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(node)
    for node, (x, y) in enumerate(positions):
        cx, cy = int(x / cell), int(y / cell)
        for nx_ in (cx - 1, cx, cx + 1):
            for ny_ in (cy - 1, cy, cy + 1):
                for other in buckets.get((nx_, ny_), ()):
                    if other <= node:
                        continue
                    ox, oy = positions[other]
                    if math.hypot(x - ox, y - oy) <= radius:
                        net.add_edge(node, other)
    return net.largest_component_subgraph()


def ring_radial_network(
    rings: int,
    spokes: int,
    ring_spacing: float = 1.0,
    seed: int = 0,
) -> RoadNetwork:
    """Ring-and-radial city: concentric rings connected by radial avenues.

    A classic European-city topology; useful for experiments where query
    distance and geographic area are related non-linearly (belts are
    shortcuts).  Node 0 is the city center.
    """
    if rings < 1 or spokes < 3:
        raise ValueError("need rings >= 1 and spokes >= 3")
    del seed  # deterministic by construction; kept for a uniform signature
    net = RoadNetwork(directed=False)
    net.add_node(0, 0.0, 0.0)

    def node_id(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * spokes + spoke

    for ring in range(1, rings + 1):
        r = ring * ring_spacing
        for spoke in range(spokes):
            theta = 2.0 * math.pi * spoke / spokes
            net.add_node(node_id(ring, spoke), r * math.cos(theta), r * math.sin(theta))
    for spoke in range(spokes):
        net.add_edge(0, node_id(1, spoke))
        for ring in range(1, rings):
            net.add_edge(node_id(ring, spoke), node_id(ring + 1, spoke))
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            net.add_edge(node_id(ring, spoke), node_id(ring, (spoke + 1) % spokes))
    return net


def tiger_like_network(
    blocks: int = 8,
    block_size: int = 5,
    spacing: float = 1.0,
    arterial_speedup: float = 2.0,
    perturbation: float = 0.15,
    seed: int = 0,
) -> RoadNetwork:
    """Hierarchical network imitating TIGER/Line suburban topology.

    The map is a ``blocks x blocks`` super-grid of neighborhoods.  Every
    neighborhood is a jittered ``block_size x block_size`` local street grid;
    neighborhoods are stitched together by arterial roads whose traversal
    cost is their Euclidean length divided by ``arterial_speedup`` — i.e.
    arterials are faster, creating the highway-hierarchy effect real route
    planners see.  Weights are travel times, not distances, so the A*
    Euclidean heuristic must be scaled by callers (see
    :func:`repro.search.astar.euclidean_heuristic`).

    Parameters
    ----------
    blocks:
        Neighborhoods per side of the super-grid.
    block_size:
        Intersections per side of each neighborhood.
    spacing:
        Local street spacing.
    arterial_speedup:
        How much faster arterials are than local streets (>= 1).
    perturbation:
        Local-street jitter fraction, as in :func:`grid_network`.
    seed:
        RNG seed.
    """
    if blocks < 1 or block_size < 2:
        raise ValueError("need blocks >= 1 and block_size >= 2")
    if arterial_speedup < 1.0:
        raise ValueError("arterial_speedup must be >= 1")
    rng = random.Random(seed)
    net = RoadNetwork(directed=False)
    jitter = perturbation * spacing
    # Neighborhoods are separated by one extra spacing unit for the arterial.
    block_span = block_size * spacing + spacing

    def node_id(bx: int, by: int, col: int, row: int) -> int:
        per_block = block_size * block_size
        return ((by * blocks + bx) * per_block) + row * block_size + col

    for by in range(blocks):
        for bx in range(blocks):
            ox = bx * block_span
            oy = by * block_span
            for row in range(block_size):
                for col in range(block_size):
                    dx = rng.uniform(-jitter, jitter)
                    dy = rng.uniform(-jitter, jitter)
                    net.add_node(
                        node_id(bx, by, col, row),
                        ox + col * spacing + dx,
                        oy + row * spacing + dy,
                    )
            for row in range(block_size):
                for col in range(block_size):
                    if col + 1 < block_size:
                        net.add_edge(
                            node_id(bx, by, col, row), node_id(bx, by, col + 1, row)
                        )
                    if row + 1 < block_size:
                        net.add_edge(
                            node_id(bx, by, col, row), node_id(bx, by, col, row + 1)
                        )
    # Connections between adjacent neighborhoods: a fast arterial at the
    # midpoint boundary intersections, plus slow local streets at the
    # corners — so "avoid highways" routing (FilteredView) stays connected,
    # as on real maps.
    mid = block_size // 2
    last = block_size - 1
    for by in range(blocks):
        for bx in range(blocks):
            if bx + 1 < blocks:
                u = node_id(bx, by, last, mid)
                v = node_id(bx + 1, by, 0, mid)
                net.add_edge(u, v, net.euclidean_distance(u, v) / arterial_speedup)
                for row in (0, last):
                    a = node_id(bx, by, last, row)
                    b = node_id(bx + 1, by, 0, row)
                    net.add_edge(a, b)
            if by + 1 < blocks:
                u = node_id(bx, by, mid, last)
                v = node_id(bx, by + 1, mid, 0)
                net.add_edge(u, v, net.euclidean_distance(u, v) / arterial_speedup)
                for col in (0, last):
                    a = node_id(bx, by, col, last)
                    b = node_id(bx, by + 1, col, 0)
                    net.add_edge(a, b)
    return net


def scale_free_network(
    num_nodes: int,
    attachment: int = 2,
    extent: float = 10.0,
    seed: int = 0,
) -> RoadNetwork:
    """Barabási–Albert preferential-attachment network with hub nodes.

    Not a road topology: scale-free graphs model the *logical* networks a
    production directions service also serves (transit systems with hub
    stations, flight networks, multimodal overlays).  Their heavy-tailed
    degree distribution is the stress case for preprocessing-based engines
    — contracting a hub is expensive — which is exactly why the search
    benchmarks exercise them next to grids.

    Nodes are placed uniformly at random in an ``extent x extent`` square;
    each new node attaches to ``attachment`` distinct existing nodes chosen
    proportionally to degree, and edge weights are Euclidean lengths.
    Connected by construction.

    Parameters
    ----------
    num_nodes:
        Total nodes (must exceed ``attachment``).
    attachment:
        Edges each arriving node brings (the BA ``m`` parameter, >= 1).
    extent:
        Side of the square the nodes are scattered in.
    seed:
        RNG seed.
    """
    if attachment < 1:
        raise ValueError("attachment must be >= 1")
    if num_nodes <= attachment:
        raise ValueError("num_nodes must exceed attachment")
    rng = random.Random(seed)
    net = RoadNetwork(directed=False)
    for node in range(num_nodes):
        net.add_node(node, rng.uniform(0.0, extent), rng.uniform(0.0, extent))

    # Seed clique keeps the first preferential draws well-defined.
    core = attachment + 1
    for u in range(core):
        for v in range(u + 1, core):
            net.add_edge(u, v)
    # Every edge endpoint lands here once, so sampling the list uniformly
    # is sampling nodes proportionally to degree (the BA trick).
    endpoints: list[int] = []
    for u in range(core):
        for v in range(u + 1, core):
            endpoints.extend((u, v))
    for node in range(core, num_nodes):
        chosen: set[int] = set()
        while len(chosen) < attachment:
            chosen.add(endpoints[rng.randrange(len(endpoints))])
        for target in chosen:
            net.add_edge(node, target)
            endpoints.extend((node, target))
    return net
