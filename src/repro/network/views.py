"""Read-only network views: reversed edges and filtered subnetworks.

Views wrap a network with the same read interface the search algorithms
use, without copying it:

* :class:`ReverseView` flips every edge of a directed network — the
  backward half of point-to-point searches and destination-side SSMD trees
  on one-way road networks.
* :class:`FilteredView` hides edges failing a predicate — the paper's
  "additional specified conditions (e.g., avoid highways)" (Section I).
  :func:`avoid_fast_roads` builds the avoid-highways predicate for the
  travel-time networks produced by
  :func:`repro.network.generators.tiger_like_network`.

Views compose: ``ReverseView(FilteredView(net, pred))`` is valid.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.network.graph import NodeId, Point

EdgePredicate = Callable[[NodeId, NodeId, float], bool]

__all__ = ["ReverseView", "FilteredView", "avoid_fast_roads"]


class _ViewBase:
    """Shared plumbing: delegate the non-adjacency read interface."""

    def __init__(self, network) -> None:
        self._network = network

    @property
    def base(self):
        """The wrapped network."""
        return self._network

    @property
    def num_nodes(self) -> int:
        return self._network.num_nodes

    def __contains__(self, node: NodeId) -> bool:
        return node in self._network

    def __len__(self) -> int:
        return len(self._network)

    def nodes(self) -> Iterator[NodeId]:
        return self._network.nodes()

    def position(self, node: NodeId) -> Point:
        return self._network.position(node)

    def euclidean_distance(self, u: NodeId, v: NodeId) -> float:
        return self._network.euclidean_distance(u, v)


class ReverseView(_ViewBase):
    """The wrapped network with every edge direction flipped.

    On undirected networks this is the identity (adjacency is symmetric
    already); it exists so algorithms can uniformly ask for "the backward
    graph".  The reverse adjacency is materialized lazily on first use and
    then cached — O(E) once, O(1) per lookup after.
    """

    def __init__(self, network) -> None:
        super().__init__(network)
        self._reverse: dict[NodeId, dict[NodeId, float]] | None = None

    @property
    def directed(self) -> bool:
        return getattr(self._network, "directed", False)

    def _build(self) -> dict[NodeId, dict[NodeId, float]]:
        reverse: dict[NodeId, dict[NodeId, float]] = {
            node: {} for node in self._network.nodes()
        }
        for u in self._network.nodes():
            for v, w in self._network.neighbors(u).items():
                reverse[v][u] = w
        return reverse

    def neighbors(self, node: NodeId) -> dict[NodeId, float]:
        """Incoming edges of ``node`` in the wrapped network."""
        if not self.directed:
            return self._network.neighbors(node)
        if self._reverse is None:
            self._reverse = self._build()
        return self._reverse[node]


class FilteredView(_ViewBase):
    """The wrapped network restricted to edges passing ``predicate``.

    Parameters
    ----------
    network:
        Any network-like object.
    predicate:
        ``predicate(u, v, weight) -> bool``; edges where it returns
        ``False`` become invisible to searches.  Nodes are never hidden —
        an isolated node simply has no usable edges, and searches report
        :class:`~repro.exceptions.NoPathError` naturally.

    Notes
    -----
    Filtering happens per adjacency access (no copy), so the same view is
    valid even if the predicate captures mutable state — but deterministic
    predicates are strongly recommended for reproducibility.
    """

    def __init__(self, network, predicate: EdgePredicate) -> None:
        super().__init__(network)
        self._predicate = predicate

    @property
    def directed(self) -> bool:
        return getattr(self._network, "directed", False)

    def neighbors(self, node: NodeId) -> dict[NodeId, float]:
        """Outgoing edges of ``node`` that pass the predicate."""
        return {
            v: w
            for v, w in self._network.neighbors(node).items()
            if self._predicate(node, v, w)
        }


def avoid_fast_roads(network, speed_threshold: float = 1.0) -> FilteredView:
    """View of ``network`` without roads faster than ``speed_threshold``.

    A road's speed is its Euclidean length divided by its traversal cost;
    on the TIGER-like generator local streets have speed 1 and arterials
    ``arterial_speedup`` > 1, so the default threshold hides exactly the
    arterials — the paper's "avoid highways" condition.
    """
    epsilon = 1e-9

    def keep(u: NodeId, v: NodeId, weight: float) -> bool:
        if weight <= 0:
            return True
        speed = network.euclidean_distance(u, v) / weight
        return speed <= speed_threshold + epsilon

    return FilteredView(network, keep)
