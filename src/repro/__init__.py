"""Reproduction of *OPAQUE: Protecting Path Privacy in Directions Search*.

Lee, Lee, Leong & Zheng, ICDE 2009 (DOI 10.1109/ICDE.2009.218).

The library implements the full OPAQUE system — obfuscated path queries,
the trusted obfuscator, the server-side multi-source multi-destination
query processor, the candidate result path filter — plus the road-network
and storage substrates it runs on, the location-privacy baselines the
paper compares against, and an experiment suite reproducing every
quantitative claim.

Quickstart
----------
>>> from repro import OpaqueSystem, ClientRequest, PathQuery, ProtectionSetting
>>> from repro.network import grid_network
>>> net = grid_network(20, 20, seed=1)
>>> system = OpaqueSystem(net, mode="shared")
>>> request = ClientRequest("alice", PathQuery(0, 399), ProtectionSetting(3, 3))
>>> paths = system.submit([request])
>>> paths["alice"].distance > 0
True
"""

from repro.core.query import (
    ClientRequest,
    ObfuscatedPathQuery,
    PathQuery,
    ProtectionSetting,
)
from repro.core.privacy import breach_probability, privacy_report
from repro.core.obfuscator import ObfuscationRecord, PathQueryObfuscator
from repro.core.server import DirectionsServer
from repro.core.filter import CandidateResultPathFilter
from repro.core.system import OpaqueSystem, SessionReport
from repro.network.graph import RoadNetwork
from repro.search.result import PathResult, SearchStats

__version__ = "1.0.0"

__all__ = [
    "PathQuery",
    "ObfuscatedPathQuery",
    "ProtectionSetting",
    "ClientRequest",
    "breach_probability",
    "privacy_report",
    "PathQueryObfuscator",
    "ObfuscationRecord",
    "DirectionsServer",
    "CandidateResultPathFilter",
    "OpaqueSystem",
    "SessionReport",
    "RoadNetwork",
    "PathResult",
    "SearchStats",
    "__version__",
]
