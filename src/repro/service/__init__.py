"""Online obfuscation service: timed arrivals and windowed batching.

The paper's obfuscator is an online middle tier: requests arrive over
time, and shared obfuscated path queries only exist if several requests
are *in hand* simultaneously (Section IV's clustering step).  This
subpackage models that dimension — the batching window is a new knob
trading response latency against shared-query privacy and amortized
server cost (experiment E10).
"""

from repro.service.simulator import (
    BatchingObfuscationService,
    ServiceReport,
    TimedRequest,
    poisson_arrivals,
)

__all__ = [
    "TimedRequest",
    "BatchingObfuscationService",
    "ServiceReport",
    "poisson_arrivals",
]
