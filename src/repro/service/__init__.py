"""Online serving: timed arrivals, windowed batching, caches, concurrency.

The paper's obfuscator is an online middle tier: requests arrive over
time, and shared obfuscated path queries only exist if several requests
are *in hand* simultaneously (Section IV's clustering step).  This
subpackage models that dimension twice over:

* :mod:`repro.service.simulator` — discrete-time windowed batching, the
  latency/privacy/cost knob of experiment E10;
* :mod:`repro.service.serving` + :mod:`repro.service.cache` — the
  production serving layer: a thread-safe :class:`ServingStack` fronting
  the directions server with a preprocessing-artifact cache, a
  many-to-many result cache, a concurrent dispatcher, and an optional
  cross-session :class:`QueryCoalescer` merging concurrent obfuscated
  queries into shared union kernel passes — so repeated traffic stops
  paying preprocessing, repeated obfuscated queries stop paying search,
  and concurrent overlapping queries share one pass;
* :mod:`repro.service.pipeline` — the live traffic pipeline: an
  in-process event stream feeding a debounced :class:`DeltaBatcher`
  and a background :class:`RecustomizeWorker` that installs re-weights
  as atomic network epochs while queries keep serving;
* :mod:`repro.service.gateway` + :mod:`repro.service.wire` — the HTTP
  network boundary: an asyncio gateway speaking a versioned canonical
  JSON wire schema, with shard worker processes, admission control and
  redaction-enforced access logging (``repro serve``).
"""

from repro.service.blob import (
    Blob,
    read_blob,
    read_csr_blob,
    read_overlay_blob,
    write_blob,
    write_csr_blob,
    write_overlay_blob,
)
from repro.service.cache import (
    CacheSnapshot,
    PreprocessingCache,
    ResultCache,
    network_fingerprint,
)
from repro.service.pipeline import (
    DeltaBatch,
    DeltaBatcher,
    PipelineSnapshot,
    RecustomizeWorker,
    TrafficEventStream,
    TrafficPipeline,
)
from repro.service.serving import (
    CoalesceConfig,
    CoalesceSnapshot,
    ConcurrentDispatcher,
    QueryCoalescer,
    ReplayReport,
    ReweightOutcome,
    ServingConfig,
    ServingStack,
    replay,
)
from repro.service.simulator import (
    BatchingObfuscationService,
    ServiceReport,
    TimedRequest,
    poisson_arrivals,
)

__all__ = [
    "TimedRequest",
    "BatchingObfuscationService",
    "ServiceReport",
    "poisson_arrivals",
    "network_fingerprint",
    "CacheSnapshot",
    "PreprocessingCache",
    "ResultCache",
    "ConcurrentDispatcher",
    "CoalesceConfig",
    "CoalesceSnapshot",
    "QueryCoalescer",
    "ReweightOutcome",
    "ServingConfig",
    "ServingStack",
    "ReplayReport",
    "replay",
    "TrafficEventStream",
    "DeltaBatch",
    "DeltaBatcher",
    "RecustomizeWorker",
    "TrafficPipeline",
    "PipelineSnapshot",
    "Blob",
    "read_blob",
    "write_blob",
    "read_csr_blob",
    "write_csr_blob",
    "read_overlay_blob",
    "write_overlay_blob",
]
