"""Live traffic pipeline: streaming re-weights under serving load.

:meth:`~repro.service.serving.ServingStack.reweight` (PR 5) started as
a synchronous, between-batches call — correct, but a production traffic
feed does not wait for a gap in the query stream.  This module promotes
it to a streaming pipeline with three stages, modeled in-process (no
broker dependency):

1. :class:`TrafficEventStream` — an append-only, replayable log of
   :class:`~repro.workloads.replay.TrafficEvent` edge re-weights, each
   stamped with its arrival time on an injectable clock;
2. :class:`DeltaBatcher` — a debounce window that coalesces pending
   events into contiguous batches (per-edge last-writer-wins within a
   batch) and groups them by overlay cell for accounting;
3. :class:`RecustomizeWorker` — a background thread that drains
   batches, recustomizes only the touched cells from a copy-on-write
   network snapshot
   (:meth:`~repro.search.overlay.OverlayGraph.recustomized_on`), and
   installs the result atomically via
   :meth:`~repro.service.serving.ServingStack.install_epoch`.

The epoch handoff is the concurrency story: every ``answer_batch``
captures ``(network, fingerprint)`` once, so in-flight queries finish
against the old epoch's immutable snapshot while new queries pick up
the new one — the old "call reweight between batches" restriction is
gone.  The price is *bounded staleness*, not inconsistency: every
response is exact for the network state after some contiguous prefix
of the published event stream (batches always drain prefixes), and the
event→installed latency is tracked per event in the
``repro_pipeline_staleness_seconds`` histogram that the bench gate
watches.

:class:`TrafficPipeline` is the facade wiring the three stages to one
stack: ``publish`` events from any thread, ``start``/``stop`` the
worker (or drive :meth:`TrafficPipeline.pump` synchronously in tests),
``quiesce`` to drain everything, and ``snapshot`` for the counters.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service.serving import ReweightOutcome, ServingStack
from repro.service.stats import percentile
from repro.workloads.replay import TrafficEvent

__all__ = [
    "TrafficEventStream",
    "DeltaBatch",
    "DeltaBatcher",
    "RecustomizeWorker",
    "TrafficPipeline",
    "PipelineSnapshot",
    "replay_with_traffic",
]

#: staleness bucket grid (seconds): sub-millisecond installs up to
#: multi-second backlogs, the operating range of the soak and bench
_STALENESS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: raw staleness samples kept for exact snapshot percentiles
_MAX_STALENESS_SAMPLES = 4096


@dataclass(frozen=True, slots=True)
class _StampedEvent:
    """One published event plus its arrival time on the stream clock."""

    event: TrafficEvent
    arrived: float


class TrafficEventStream:
    """Append-only, replayable log of traffic events.

    Publishers (feed adapters, scenario replays, tests) append from any
    thread; consumers read by offset, so the same stream can be drained
    by the live batcher and replayed later from offset 0 (e.g. to
    rebuild a scratch overlay for the byte-identity check).  Every
    event is stamped with its arrival time on ``clock`` — the timestamp
    staleness is measured from.

    Parameters
    ----------
    clock:
        Monotonic time source (the
        :attr:`~repro.service.serving.CoalesceConfig.clock` pattern);
        tests inject a stepping clock for deterministic staleness.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._events: list[_StampedEvent] = []
        self._lock = threading.Lock()

    def publish(self, event: TrafficEvent) -> int:
        """Append one event; returns its offset in the stream."""
        stamped = _StampedEvent(event, self._clock())
        with self._lock:
            self._events.append(stamped)
            return len(self._events) - 1

    def publish_many(self, events: Iterable[TrafficEvent]) -> int:
        """Append events in order; returns the offset after the last one."""
        arrived = self._clock()
        with self._lock:
            self._events.extend(_StampedEvent(e, arrived) for e in events)
            return len(self._events)

    def __len__(self) -> int:
        """Number of events published so far."""
        with self._lock:
            return len(self._events)

    def read_from(self, offset: int) -> list[_StampedEvent]:
        """Stamped events from ``offset`` to the current end (replayable)."""
        with self._lock:
            return self._events[offset:]

    def events(self) -> list[TrafficEvent]:
        """The full event log, in publication order."""
        with self._lock:
            return [s.event for s in self._events]


@dataclass(frozen=True, slots=True)
class DeltaBatch:
    """One contiguous slice of the event stream, ready to install.

    Attributes
    ----------
    first_offset:
        Stream offset of the batch's first event; with :attr:`stamped`
        this identifies exactly which prefix of the stream is applied
        once the batch installs.
    stamped:
        The batch's events with their arrival stamps, in stream order.
    changes:
        Per-edge last-writer-wins reduction of the events, as the
        ``(u, v, weight)`` tuples ``ServingStack.reweight`` takes.
        Within one contiguous batch the reduction is state-equivalent
        to applying the events one by one, which is what keeps every
        installed epoch equal to the state after a stream *prefix*.
    """

    first_offset: int
    stamped: tuple[_StampedEvent, ...]
    changes: tuple[tuple, ...]

    def __len__(self) -> int:
        """Number of events in the batch."""
        return len(self.stamped)

    def cells(self, cell_of: dict) -> dict[int | None, int]:
        """Events per overlay cell (``None`` for cut/unknown edges).

        Cell attribution follows
        :meth:`~repro.search.overlay.OverlayGraph.touched_cells`: an
        edge belongs to a cell only when both endpoints share it.
        """
        counts: dict[int | None, int] = {}
        for s in self.stamped:
            cu = cell_of.get(s.event.u)
            cell = cu if cu == cell_of.get(s.event.v) else None
            counts[cell] = counts.get(cell, 0) + 1
        return counts


class DeltaBatcher:
    """Debounce window coalescing pending events into install batches.

    Events accumulate until the *oldest* pending one has waited
    ``debounce_s`` (letting a burst — e.g. an incident spike touching
    one cell many times — collapse into one recustomization) or until
    ``max_batch`` events are pending (bounding worst-case batch work).
    A drain always takes **all** pending events, never a subset: the
    batches partition the stream into contiguous slices, which is the
    invariant behind the pipeline's prefix-staleness guarantee.

    Parameters
    ----------
    stream:
        The :class:`TrafficEventStream` to consume (by offset).
    debounce_s:
        Seconds the oldest pending event may wait before the batch is
        due (0 = every drain attempt flushes whatever is pending).
    max_batch:
        Pending-event count that makes the batch due immediately.
    clock:
        Time source shared with the stream.
    """

    def __init__(
        self,
        stream: TrafficEventStream,
        debounce_s: float = 0.005,
        max_batch: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if debounce_s < 0:
            raise ValueError("debounce_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.stream = stream
        self.debounce_s = debounce_s
        self.max_batch = max_batch
        self._clock = clock
        self._offset = 0
        self._lock = threading.Lock()

    @property
    def offset(self) -> int:
        """Stream offset of the next event to drain."""
        with self._lock:
            return self._offset

    def pending(self) -> int:
        """Events published but not yet drained into a batch."""
        return len(self.stream) - self.offset

    def due_in(self) -> float | None:
        """Seconds until the pending batch is due; ``None`` when empty.

        0.0 means due now (debounce expired or ``max_batch`` reached).
        The worker uses this as its condition-wait timeout.
        """
        with self._lock:
            pending = self.stream.read_from(self._offset)
            if not pending:
                return None
            if len(pending) >= self.max_batch:
                return 0.0
            age = self._clock() - pending[0].arrived
            return max(0.0, self.debounce_s - age)

    def drain(self, force: bool = False) -> DeltaBatch | None:
        """Take every pending event as one batch, or ``None``.

        Returns ``None`` when nothing is pending, or when the debounce
        window is still open and ``force`` is false (``force=True`` is
        the quiesce path: flush regardless of the window).
        """
        with self._lock:
            pending = self.stream.read_from(self._offset)
            if not pending:
                return None
            if (
                not force
                and len(pending) < self.max_batch
                and self._clock() - pending[0].arrived < self.debounce_s
            ):
                return None
            first = self._offset
            self._offset += len(pending)
        reduced: dict[tuple, tuple] = {}
        for s in pending:
            e = s.event
            reduced[(e.u, e.v)] = (e.u, e.v, e.weight)
        return DeltaBatch(
            first_offset=first,
            stamped=tuple(pending),
            changes=tuple(reduced.values()),
        )


class RecustomizeWorker:
    """Drains batches and installs epochs, on demand or on a thread.

    Each :meth:`step` takes one due batch, applies it through
    ``stack.reweight(..., epoch=True)`` — copy-on-write snapshot,
    touched-cell recustomization, atomic epoch handoff — then observes
    per-event staleness and retires cache entries of epochs older than
    ``keep_epochs`` handoffs (in-flight batches that captured a recent
    old epoch still finish on their own network snapshot; only the
    cache keys are released).  :meth:`start` runs the same step in a
    daemon thread woken by the pipeline on publish; a failing step
    parks the exception in :attr:`error` (re-raised by
    :meth:`TrafficPipeline.quiesce`) instead of dying silently.
    """

    def __init__(
        self,
        stack: ServingStack,
        batcher: DeltaBatcher,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        keep_epochs: int = 2,
    ) -> None:
        if keep_epochs < 1:
            raise ValueError("keep_epochs must be >= 1")
        self.stack = stack
        self.batcher = batcher
        self._clock = clock
        self._keep = keep_epochs
        self.metrics = metrics if metrics is not None else stack.metrics
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: first exception a step raised; the worker stops on it
        self.error: Exception | None = None
        self._retired: deque[str] = deque()
        self._samples: deque[float] = deque(maxlen=_MAX_STALENESS_SAMPLES)
        self._samples_lock = threading.Lock()
        # Serializes whole steps: the pipeline is the single epoch
        # writer, and two concurrent copy-on-write installs would race
        # (both snapshot epoch N; the loser's changes would vanish).
        self._step_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._wake = threading.Condition()
        self._stopping = False
        self._m_installs = self.metrics.counter(
            "repro_pipeline_installs_total",
            desc="epoch handoffs installed by the recustomize worker",
        )
        self._m_edges = self.metrics.counter(
            "repro_pipeline_edges_total",
            desc="deduplicated edge re-weights applied across installs",
        )
        self._m_cells = self.metrics.counter(
            "repro_pipeline_cells_recustomized_total",
            desc="overlay cells recustomized across installs",
        )
        self._m_staleness = self.metrics.histogram(
            "repro_pipeline_staleness_seconds",
            buckets=_STALENESS_BUCKETS,
            desc="event publish to epoch install latency (seconds)",
        )

    def step(self, force: bool = False) -> ReweightOutcome | None:
        """Drain and install one due batch; ``None`` when none is due.

        Synchronous entry point — tests and :meth:`TrafficPipeline.pump`
        call it directly for deterministic single-threaded drains; the
        background thread calls it in its loop.  Steps are serialized
        by an internal lock, so quiescing callers and the background
        thread can never interleave two copy-on-write installs.
        """
        with self._step_lock:
            return self._step_locked(force)

    def _step_locked(self, force: bool) -> ReweightOutcome | None:
        batch = self.batcher.drain(force=force)
        if batch is None:
            return None
        with self._tracer.span(
            "pipeline.install",
            batch_events=len(batch),
            unique_edges=len(batch.changes),
        ) as span:
            outcome = self.stack.reweight(batch.changes, epoch=True)
            span.set("touched_cells", len(outcome.touched_cells))
            span.set("recustomized", outcome.recustomized)
            span.set("epoch", outcome.epoch)
        now = self._clock()
        with self._samples_lock:
            for s in batch.stamped:
                staleness = max(0.0, now - s.arrived)
                self._m_staleness.observe(staleness)
                self._samples.append(staleness)
        self._m_installs.inc()
        self._m_edges.inc(len(batch.changes))
        self._m_cells.inc(len(outcome.touched_cells))
        self._retire(outcome.previous_fingerprint)
        return outcome

    def _retire(self, fingerprint: str) -> None:
        """Queue the previous epoch's key; release keys beyond the window."""
        if not fingerprint:
            return
        self._retired.append(fingerprint)
        while len(self._retired) > self._keep:
            old = self._retired.popleft()
            self.stack.preprocessing.invalidate_fingerprint(old)
            self.stack.results.invalidate_fingerprint(old)

    def staleness_samples(self) -> list[float]:
        """Recent raw staleness samples (bounded), in install order."""
        with self._samples_lock:
            return list(self._samples)

    # ------------------------------------------------------------------
    # Background mode
    # ------------------------------------------------------------------
    def notify(self) -> None:
        """Wake the background thread (a publisher added events)."""
        with self._wake:
            self._wake.notify_all()

    def start(self) -> None:
        """Start the background drain thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name="repro-pipeline", daemon=True
        )
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the thread; with ``drain`` flush pending events first."""
        with self._wake:
            self._stopping = True
            self._wake.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if drain and self.error is None:
            while self.step(force=True) is not None:
                pass

    def _run(self) -> None:
        while True:
            with self._wake:
                if self._stopping:
                    return
                due = self.batcher.due_in()
                if due is None or due > 0:
                    # New publishes notify (under this condition, so no
                    # wakeup can slip between the check and the wait);
                    # the timeout covers the tail of an open window.
                    self._wake.wait(timeout=due)
                    continue
            try:
                self.step()
            except Exception as exc:  # surface via quiesce, don't die mute
                self.error = exc
                return


@dataclass(frozen=True, slots=True)
class PipelineSnapshot:
    """Point-in-time counters of a :class:`TrafficPipeline`.

    Attributes
    ----------
    events:
        Traffic events published to the stream so far.
    pending:
        Events published but not yet installed.
    installs:
        Epoch handoffs completed.
    edges_applied:
        Deduplicated edge re-weights applied across installs.
    cells_recustomized:
        Overlay cells recustomized across installs.
    epoch:
        The serving stack's current epoch sequence number.
    staleness_p50_ms, staleness_p95_ms, staleness_max_ms:
        Percentiles of per-event publish→install latency, from the
        worker's bounded raw-sample window (milliseconds; 0 when no
        event has been installed yet).
    customize_workers:
        Parallel-customization worker processes behind the stack's
        re-weights (0 = serial loops).
    customize_spills:
        CSR blob spills the stack's customizer pool has paid — pool
        health: a healthy pool spills once and rides its cumulative
        delta map through subsequent re-weights.
    """

    events: int = 0
    pending: int = 0
    installs: int = 0
    edges_applied: int = 0
    cells_recustomized: int = 0
    epoch: int = 0
    staleness_p50_ms: float = 0.0
    staleness_p95_ms: float = 0.0
    staleness_max_ms: float = 0.0
    customize_workers: int = 0
    customize_spills: int = 0

    def to_dict(self) -> dict:
        """Stable-key report shape (see ``docs/API.md``)."""
        return {
            "schema": 1,
            "kind": "pipeline_snapshot",
            "events": self.events,
            "pending": self.pending,
            "installs": self.installs,
            "edges_applied": self.edges_applied,
            "cells_recustomized": self.cells_recustomized,
            "epoch": self.epoch,
            "staleness_p50_ms": self.staleness_p50_ms,
            "staleness_p95_ms": self.staleness_p95_ms,
            "staleness_max_ms": self.staleness_max_ms,
            "customize_workers": self.customize_workers,
            "customize_spills": self.customize_spills,
        }


class TrafficPipeline:
    """Facade wiring stream → batcher → worker onto one serving stack.

    Parameters
    ----------
    stack:
        The :class:`~repro.service.serving.ServingStack` whose epochs
        the pipeline advances.  Its metrics registry receives the
        ``repro_pipeline_*`` instruments; its tracer records one
        ``pipeline.install`` span tree per handoff.
    debounce_ms:
        Debounce window of the :class:`DeltaBatcher`, in milliseconds.
    max_batch:
        Pending-event count that flushes the window immediately.
    clock:
        Shared monotonic time source for arrival stamps, debounce and
        staleness (injectable for deterministic tests).
    keep_epochs:
        Retired epochs whose cache keys are kept before release.

    Examples
    --------
    Synchronous use (tests, deterministic replays)::

        pipeline = TrafficPipeline(stack, debounce_ms=0.0)
        pipeline.publish(TrafficEvent(u, v, 2.5))
        pipeline.pump()          # drain + install on this thread

    Background use (live serving)::

        with TrafficPipeline(stack) as pipeline:
            pipeline.publish_many(events)   # any thread, any time
            ...                             # queries keep serving
        # __exit__ stops the worker, draining what is pending
    """

    def __init__(
        self,
        stack: ServingStack,
        debounce_ms: float = 5.0,
        max_batch: int = 256,
        clock: Callable[[], float] = time.monotonic,
        keep_epochs: int = 2,
    ) -> None:
        self.stack = stack
        self._clock = clock
        self.stream = TrafficEventStream(clock=clock)
        self.batcher = DeltaBatcher(
            self.stream,
            debounce_s=debounce_ms / 1000.0,
            max_batch=max_batch,
            clock=clock,
        )
        self.worker = RecustomizeWorker(
            stack,
            self.batcher,
            clock=clock,
            metrics=stack.metrics,
            tracer=stack.tracer,
            keep_epochs=keep_epochs,
        )
        self._m_events = stack.metrics.counter(
            "repro_pipeline_events_total",
            desc="traffic events published to the pipeline",
        )
        self._m_pending = stack.metrics.gauge(
            "repro_pipeline_pending_events",
            desc="events published but not yet installed",
        )

    def publish(self, event: TrafficEvent) -> int:
        """Publish one event; returns its stream offset."""
        offset = self.stream.publish(event)
        self._m_events.inc()
        self._m_pending.set(self.batcher.pending())
        self.worker.notify()
        return offset

    def publish_many(self, events: Sequence[TrafficEvent]) -> int:
        """Publish events in order; returns the stream length after."""
        end = self.stream.publish_many(events)
        self._m_events.inc(len(events))
        self._m_pending.set(self.batcher.pending())
        self.worker.notify()
        return end

    def pump(self) -> int:
        """Synchronously install every pending event; returns installs.

        The deterministic drain for tests and CLI replays: repeatedly
        force-flushes the batcher on the calling thread until nothing
        is pending.  Do not mix with a running background worker.
        """
        installs = 0
        while self.worker.step(force=True) is not None:
            installs += 1
        self._m_pending.set(self.batcher.pending())
        self._raise_worker_error()
        return installs

    def start(self) -> None:
        """Start the background worker thread."""
        self.worker.start()

    def stop(self) -> None:
        """Stop the background worker, draining pending events."""
        self.worker.stop(drain=True)
        self._m_pending.set(self.batcher.pending())
        self._raise_worker_error()

    def quiesce(self, timeout_s: float = 30.0) -> None:
        """Block until every published event is installed.

        With the background worker running, waits (wall clock) for the
        drain — forcing the final partial window through — and raises
        the worker's parked exception, if any.  Without a worker
        thread, drains synchronously like :meth:`pump`.

        Raises
        ------
        TimeoutError
            When the worker fails to drain within ``timeout_s``.
        """
        thread = self.worker._thread
        if thread is None or not thread.is_alive():
            self.pump()
            return
        deadline = time.monotonic() + timeout_s
        while self.batcher.pending() > 0:
            self._raise_worker_error()
            self.worker.notify()
            if self.batcher.due_in() not in (None, 0.0):
                # Tail of a debounce window: flush it from here rather
                # than waiting the window out.
                self.worker.step(force=True)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"pipeline failed to quiesce within {timeout_s}s "
                    f"({self.batcher.pending()} events pending)"
                )
            time.sleep(0.001)
        # A drain advances the batcher offset (zeroing ``pending``) at
        # the *start* of a step, so the worker may still be inside the
        # final install here.  Steps serialize on the step lock — take
        # it once so every counter (installs, edges, epoch) is final
        # before this method returns.
        with self.worker._step_lock:
            pass
        self._raise_worker_error()
        self._m_pending.set(self.batcher.pending())
        self._raise_worker_error()

    def _raise_worker_error(self) -> None:
        if self.worker.error is not None:
            raise self.worker.error

    def snapshot(self) -> PipelineSnapshot:
        """Current counters as a :class:`PipelineSnapshot`."""
        samples = sorted(self.worker.staleness_samples())
        to_ms = 1000.0
        customizer = getattr(self.stack, "customizer", None)
        return PipelineSnapshot(
            events=len(self.stream),
            pending=self.batcher.pending(),
            installs=self.worker._m_installs.value,
            edges_applied=self.worker._m_edges.value,
            cells_recustomized=self.worker._m_cells.value,
            epoch=self.stack.epoch,
            staleness_p50_ms=percentile(samples, 0.50) * to_ms,
            staleness_p95_ms=percentile(samples, 0.95) * to_ms,
            staleness_max_ms=(samples[-1] * to_ms) if samples else 0.0,
            customize_workers=customizer.workers if customizer else 0,
            customize_spills=customizer.spills if customizer else 0,
        )

    @property
    def running(self) -> bool:
        """Whether the background worker thread is alive."""
        thread = self.worker._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "TrafficPipeline":
        """Start the background worker on ``with`` entry."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop (and drain) the worker on ``with`` exit."""
        self.stop()

    def __repr__(self) -> str:
        return (
            f"TrafficPipeline(events={len(self.stream)}, "
            f"pending={self.batcher.pending()}, epoch={self.stack.epoch})"
        )


def replay_with_traffic(
    stack: ServingStack,
    items: Sequence,
    pipeline: TrafficPipeline,
    repeats: int = 1,
    batch_size: int = 8,
    clock: Callable[[], float] = time.perf_counter,
):
    """Replay a mixed query/traffic stream through a serving stack.

    The v2-workload counterpart of
    :func:`repro.service.serving.replay`: ``items`` interleaves
    :class:`~repro.core.query.ObfuscatedPathQuery` (or anything
    ``answer_batch`` accepts) with
    :class:`~repro.workloads.replay.TrafficEvent` in stream order.
    Queries accumulate into batches of ``batch_size``; a traffic event
    flushes the open batch (so the queries around it observe the states
    the file order implies) and publishes to ``pipeline``.  With the
    pipeline's background worker running, events install concurrently
    with the remaining queries; without it, each event burst is pumped
    synchronously before the next query batch — the deterministic mode
    tests use.  The final state is quiesced before returning, and every
    pass replays the same items (weights are absolute, so repeated
    passes are idempotent on the final state).

    Returns
    -------
    ReplayReport
        Same shape as :func:`~repro.service.serving.replay` — per-query
        latencies and the stack's cache snapshot.
    """
    from repro.service.serving import ReplayReport

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    report = ReplayReport()
    start = clock()
    batch: list = []

    def flush() -> None:
        if not batch:
            return
        t0 = clock()
        stack.answer_batch(batch)
        elapsed = clock() - t0
        report.latencies.extend([elapsed] * len(batch))
        report.queries += len(batch)
        batch.clear()

    for _ in range(repeats):
        for item in items:
            if isinstance(item, TrafficEvent):
                flush()
                pipeline.publish(item)
                if not pipeline.running:
                    pipeline.pump()
                continue
            batch.append(item)
            if len(batch) >= batch_size:
                flush()
        flush()
    if pipeline.running:
        pipeline.quiesce()
    else:
        pipeline.pump()
    report.total_seconds = clock() - start
    report.cache = stack.snapshot()
    return report
