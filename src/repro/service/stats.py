"""Shared latency-statistics helpers for the service layer.

One quantile convention for every latency report —
:class:`~repro.service.serving.ReplayReport` and
:class:`~repro.service.simulator.ServiceReport` must agree on what
"p95" means, so they both delegate here.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["percentile"]


def percentile(ordered: Sequence[float], q: float) -> float:
    """The ``q``-quantile of an ascending sequence (0 when empty).

    Nearest-rank convention: the value at index ``ceil(q * n) - 1``,
    clamped into range — no interpolation, so the result is always an
    observed sample.
    """
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1)
    return ordered[max(index, 0)]
