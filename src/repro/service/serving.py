"""Concurrent serving stack fronting the directions server.

:class:`ServingStack` is the serving layer a production OPAQUE
deployment puts between the obfuscator and the
:class:`~repro.core.server.DirectionsServer`:

1. a :class:`~repro.service.cache.PreprocessingCache` so a road
   network's engine artifact (contracted graph, landmark index) is built
   once and shared by every later session on that network — turning
   ``O(preprocess * sessions)`` into ``O(preprocess)``;
2. a :class:`~repro.service.cache.ResultCache` so a repeated obfuscated
   query ``Q(S, T)`` is answered with zero search work;
3. a :class:`ConcurrentDispatcher` that evaluates independent obfuscated
   queries of one batch across a thread pool, each worker holding its
   own engine handle (MSMD processor) over the shared artifact.

Results are deterministic: responses come back in submission order and
each query is evaluated by the same pure search code concurrently or
serially, so a concurrent batch is byte-identical to a serial one.

The stack preserves the server's adversary model — every query (cache
hit or not) is appended to ``server.observed_queries`` and counted in
``server.counters``; only the *search work* is elided.  Privacy numbers
are therefore unchanged while cost numbers drop.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.query import ObfuscatedPathQuery
from repro.core.server import DirectionsServer, ServerResponse
from repro.search.multi import (
    MSMDResult,
    MultiSourceMultiDestProcessor,
    PreprocessingProcessor,
)
from repro.service.cache import (
    CacheSnapshot,
    PreprocessingCache,
    ResultCache,
    network_fingerprint,
)
from repro.service.stats import percentile

__all__ = [
    "ConcurrentDispatcher",
    "ServingStack",
    "ReplayReport",
    "replay",
]


class ConcurrentDispatcher:
    """Evaluates independent obfuscated queries across a thread pool.

    Each worker thread lazily builds its own MSMD processor handle via
    ``handle_factory`` (processors are cheap; artifacts are shared
    through the :class:`~repro.service.cache.PreprocessingCache`), so no
    processor instance is ever shared between threads.

    Parameters
    ----------
    handle_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.search.multi.MultiSourceMultiDestProcessor`.
    max_workers:
        Thread-pool size; 1 degenerates to serial evaluation (no pool is
        created), which is the determinism baseline.
    """

    def __init__(
        self,
        handle_factory,
        max_workers: int = 4,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._factory = handle_factory
        self._max_workers = max_workers
        self._local = threading.local()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()

    @property
    def max_workers(self) -> int:
        """Configured thread-pool size."""
        return self._max_workers

    def _handle(self) -> MultiSourceMultiDestProcessor:
        """This thread's private engine handle (built on first use)."""
        handle = getattr(self._local, "handle", None)
        if handle is None:
            handle = self._factory()
            self._local.handle = handle
        return handle

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-serving",
                )
            return self._executor

    def _evaluate(
        self, network, query: ObfuscatedPathQuery, artifact: object
    ) -> MSMDResult:
        handle = self._handle()
        if artifact is not None and isinstance(handle, PreprocessingProcessor):
            handle.use_artifact(artifact)
        return handle.process(
            network, list(query.sources), list(query.destinations)
        )

    def dispatch(
        self,
        network,
        queries: Sequence[ObfuscatedPathQuery],
        artifact: object = None,
    ) -> list[MSMDResult]:
        """Evaluate every query, returning results in submission order.

        Parameters
        ----------
        network:
            Road network the queries run against.
        queries:
            Independent obfuscated queries (no ordering constraints
            between them; each is a self-contained MSMD evaluation).
        artifact:
            Optional preprocessing artifact injected into each worker's
            handle (from the serving stack's preprocessing cache).

        Returns
        -------
        list of MSMDResult
            ``results[i]`` answers ``queries[i]``; identical to what
            serial evaluation would produce.
        """
        if not queries:
            return []
        if self._max_workers == 1 or len(queries) == 1:
            return [self._evaluate(network, q, artifact) for q in queries]
        pool = self._pool()
        futures = [
            pool.submit(self._evaluate, network, q, artifact) for q in queries
        ]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        """Tear down the thread pool (idempotent; a later dispatch rebuilds it)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None


class ServingStack:
    """Thread-safe caching/concurrency layer in front of a directions server.

    The stack owns a :class:`~repro.core.server.DirectionsServer` and
    answers obfuscated queries through two caches and a dispatcher; see
    the module docstring for the architecture.  Hand the stack to
    :class:`~repro.core.system.OpaqueSystem` (``serving=`` parameter) to
    run the full client→obfuscator→server→filter pipeline over it, or
    call :meth:`answer`/:meth:`answer_batch` directly to drive the
    server side alone.

    Parameters
    ----------
    network:
        The server's road network (shared by every component).
    engine:
        Name from the :data:`repro.search.ENGINES` registry; decides
        both the preprocessing artifact and the per-worker MSMD handles.
    preprocessing_cache, result_cache:
        Preconfigured caches, e.g. shared across several stacks serving
        different networks; fresh defaults otherwise.
    max_workers:
        Dispatcher thread-pool size (1 = serial).
    spill_dir:
        Disk-spill directory for the default preprocessing cache
        (ignored when ``preprocessing_cache`` is given).

    Notes
    -----
    Paged networks are not supported here: page-fault accounting is a
    per-query experiment instrument, while the stack exists to elide
    repeated work — combining them would produce misleading I/O numbers.
    """

    def __init__(
        self,
        network,
        engine: str = "dijkstra",
        preprocessing_cache: PreprocessingCache | None = None,
        result_cache: ResultCache | None = None,
        max_workers: int = 4,
        spill_dir=None,
    ) -> None:
        from repro.search import get_engine

        self.network = network
        self.engine_name = engine
        self._engine = get_engine(engine)
        self.preprocessing = (
            preprocessing_cache
            if preprocessing_cache is not None
            else PreprocessingCache(spill_dir=spill_dir)
        )
        self.results = result_cache if result_cache is not None else ResultCache()
        self.dispatcher = ConcurrentDispatcher(
            self._engine.make_processor, max_workers=max_workers
        )
        self.server = DirectionsServer(
            network, processor=self._engine.make_processor()
        )
        self._lock = threading.Lock()
        self._fingerprint_memo: tuple[int, str] | None = None

    def _fingerprint(self) -> str:
        """This network's content fingerprint, memoized by mutation version.

        Networks exposing a ``version`` stamp (every
        :class:`~repro.network.graph.RoadNetwork`) are only rehashed
        after a mutation, making warm lookups O(1) in graph size;
        version-less network views fall back to hashing per call.
        """
        version = getattr(self.network, "version", None)
        if version is None:
            return network_fingerprint(self.network)
        memo = self._fingerprint_memo
        if memo is None or memo[0] != version:
            memo = (version, network_fingerprint(self.network))
            self._fingerprint_memo = memo
        return memo[1]

    def warm(self) -> object:
        """Build (or fetch) this network's preprocessing artifact now.

        Useful to pay the build cost at deploy time instead of on the
        first query; returns the artifact (``None`` for engines without
        preprocessing).
        """
        return self.preprocessing.get(
            self.network, self.engine_name, fingerprint=self._fingerprint()
        )

    def answer(self, query: ObfuscatedPathQuery) -> ServerResponse:
        """Answer one obfuscated query through the caches."""
        return self.answer_batch([query])[0]

    def answer_batch(
        self, queries: Sequence[ObfuscatedPathQuery]
    ) -> list[ServerResponse]:
        """Answer a batch of independent obfuscated queries.

        Cache hits are returned without search work; distinct misses are
        evaluated concurrently by the dispatcher (identical queries
        within the batch are deduplicated and share one evaluation),
        inserted into the result cache, and every query — hit or miss —
        is recorded in the underlying server's adversary view and load
        counters.

        The network fingerprint keying both caches is memoized against
        the network's mutation ``version``, so a warm batch costs O(1)
        in graph size; the graph is only rehashed after a mutation —
        which is exactly when stale tables must stop matching.

        Returns
        -------
        list of ServerResponse
            In submission order; ``response.from_cache`` tells whether
            the table was served without fresh search work (result-cache
            hit, or duplicate of another query in the same batch).
        """
        if not queries:
            return []
        fingerprint = self._fingerprint()
        responses: list[ServerResponse | None] = [None] * len(queries)
        misses: dict[
            tuple[tuple, tuple], list[int]
        ] = {}  # (S, T) -> batch indices, first occurrence evaluates
        with self._lock:
            for i, query in enumerate(queries):
                key = (query.sources, query.destinations)
                if key in misses:  # in-batch duplicate: shares the work
                    misses[key].append(i)
                    self.results.count_shared_hit()
                    continue
                cached = self.results.get(
                    fingerprint, query.sources, query.destinations,
                    self.engine_name,
                )
                if cached is not None:
                    responses[i] = ServerResponse(
                        query=query, candidates=cached, from_cache=True
                    )
                else:
                    misses[key] = [i]
        artifact = None
        if misses:
            artifact = self.preprocessing.get(
                self.network, self.engine_name, fingerprint=fingerprint
            )
        unique = [indices[0] for indices in misses.values()]
        computed = self.dispatcher.dispatch(
            self.network, [queries[i] for i in unique], artifact
        )
        with self._lock:
            for indices, result in zip(misses.values(), computed):
                first = queries[indices[0]]
                self.results.put(
                    fingerprint, first.sources, first.destinations,
                    self.engine_name, result,
                )
                for rank, i in enumerate(indices):
                    responses[i] = ServerResponse(
                        query=queries[i],
                        candidates=result,
                        from_cache=rank > 0,  # duplicates share the work
                    )
            final: list[ServerResponse] = []
            for i, response in enumerate(responses):
                if response is None:  # pragma: no cover - invariant guard
                    raise RuntimeError(
                        f"query {i} left unanswered by answer_batch"
                    )
                self.server.record(response)
                final.append(response)
        return final

    def snapshot(self) -> CacheSnapshot:
        """Combined counters of both caches."""
        pre = self.preprocessing.snapshot()
        res = self.results.snapshot()
        return CacheSnapshot(
            preprocessing_hits=pre.preprocessing_hits,
            preprocessing_misses=pre.preprocessing_misses,
            preprocessing_evictions=pre.preprocessing_evictions,
            preprocessing_disk_loads=pre.preprocessing_disk_loads,
            result_hits=res.result_hits,
            result_misses=res.result_misses,
            result_evictions=res.result_evictions,
        )

    def close(self) -> None:
        """Shut down the dispatcher's thread pool."""
        self.dispatcher.shutdown()

    def __enter__(self) -> "ServingStack":
        """Enter a ``with`` block (no setup needed)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Leave a ``with`` block, shutting the thread pool down."""
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingStack(engine={self.engine_name!r}, "
            f"workers={self.dispatcher.max_workers}, "
            f"network={self.network!r})"
        )


@dataclass(slots=True)
class ReplayReport:
    """Latency and cache outcome of one workload replay.

    Attributes
    ----------
    latencies:
        Wall-clock seconds per obfuscated query, in replay order.  When
        replaying in batches, every member of a batch is charged the
        batch's completion time (the moment its answer exists).
    total_seconds:
        Wall-clock duration of the whole replay.
    queries:
        Obfuscated queries served.
    cache:
        The stack's cumulative :class:`CacheSnapshot` after the replay.
    """

    latencies: list[float] = field(default_factory=list)
    total_seconds: float = 0.0
    queries: int = 0
    cache: CacheSnapshot = field(default_factory=CacheSnapshot)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile of per-query latency (0 when empty)."""
        return percentile(sorted(self.latencies), q)

    @property
    def p50_latency(self) -> float:
        """Median per-query latency in seconds."""
        return self.percentile(0.50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile per-query latency in seconds."""
        return self.percentile(0.95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile per-query latency in seconds."""
        return self.percentile(0.99)


def replay(
    stack: ServingStack,
    queries: Sequence[ObfuscatedPathQuery],
    repeats: int = 1,
    batch_size: int = 1,
) -> ReplayReport:
    """Replay a fixed obfuscated-query workload through a serving stack.

    The stream is served ``repeats`` times in order, ``batch_size``
    queries per concurrent batch.  The first pass is the cold run (cache
    misses build the artifact and fill the result cache); later passes
    measure the warm behavior a long-lived service sees.

    Parameters
    ----------
    stack:
        The serving stack under test.
    queries:
        The server-visible workload (e.g. obfuscated once from a
        workload file; see :mod:`repro.workloads.replay`).
    repeats:
        Total passes over the stream (>= 1).
    batch_size:
        Queries dispatched per :meth:`ServingStack.answer_batch` call
        (>= 1); the dispatcher parallelizes within a batch.

    Returns
    -------
    ReplayReport
        Per-query latencies plus the stack's cache snapshot.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    report = ReplayReport()
    start = time.perf_counter()
    for _ in range(repeats):
        for offset in range(0, len(queries), batch_size):
            batch = list(queries[offset : offset + batch_size])
            t0 = time.perf_counter()
            stack.answer_batch(batch)
            elapsed = time.perf_counter() - t0
            report.latencies.extend([elapsed] * len(batch))
            report.queries += len(batch)
    report.total_seconds = time.perf_counter() - start
    report.cache = stack.snapshot()
    return report
