"""Concurrent serving stack fronting the directions server.

:class:`ServingStack` is the serving layer a production OPAQUE
deployment puts between the obfuscator and the
:class:`~repro.core.server.DirectionsServer`:

1. a :class:`~repro.service.cache.PreprocessingCache` so a road
   network's engine artifact (contracted graph, landmark index) is built
   once and shared by every later session on that network — turning
   ``O(preprocess * sessions)`` into ``O(preprocess)``;
2. a :class:`~repro.service.cache.ResultCache` so a repeated obfuscated
   query ``Q(S, T)`` is answered with zero search work;
3. a :class:`ConcurrentDispatcher` that evaluates independent obfuscated
   queries of one batch across a thread pool, each worker holding its
   own engine handle (MSMD processor) over the shared artifact;
4. optionally a :class:`QueryCoalescer` (``coalesce=`` parameter) — a
   micro-batching window that merges *concurrent* obfuscated queries,
   across sessions, into one shared union kernel pass
   (:meth:`~repro.search.multi.MultiSourceMultiDestProcessor.process_union`)
   and slices the pair table back per session.

Results are deterministic: responses come back in submission order and
each query is evaluated by the same pure search code concurrently or
serially, so a concurrent batch is byte-identical to a serial one.  The
coalescer keeps the same contract — sliced tables carry exactly each
query's ``S x T`` pairs in its own wire order, so a coalesced response
is byte-identical to the serial answer and nothing about a session's
window-mates (who they were, how many, which of their pairs were real)
leaks into any response.  One deliberate divergence on *failing*
queries: serial ``answer_batch`` fails the whole batch before recording
anything, while a coalesced window still answers, records and caches
the failing query's window-mates (they may belong to other sessions,
which must never see a stranger's error) and raises only toward the
submitter of the failing query.

The stack preserves the server's adversary model — every query (cache
hit or not) is appended to ``server.observed_queries`` and counted in
``server.counters``; only the *search work* is elided.  Privacy numbers
are therefore unchanged while cost numbers drop.
"""

from __future__ import annotations

import math
import threading
import time
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.query import ObfuscatedPathQuery
from repro.core.server import DirectionsServer, ServerResponse
from repro.exceptions import EdgeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.search.multi import (
    MSMDResult,
    MultiSourceMultiDestProcessor,
    PreprocessingProcessor,
    UnionPassResult,
)
from repro.search.overlay import OverlayGraph
from repro.service.cache import (
    CacheSnapshot,
    PreprocessingCache,
    ResultCache,
    network_fingerprint,
)
from repro.service.stats import percentile

__all__ = [
    "ConcurrentDispatcher",
    "CoalesceConfig",
    "CoalesceSnapshot",
    "QueryCoalescer",
    "ReweightOutcome",
    "ServingConfig",
    "ServingStack",
    "ReplayReport",
    "replay",
]


@dataclass(frozen=True, slots=True)
class ReweightOutcome:
    """What :meth:`ServingStack.reweight` did with a traffic update.

    Attributes
    ----------
    edges:
        Number of edge weights applied.
    touched_cells:
        Partition cells whose cliques were recustomized (empty when the
        update only moved cut-edge weights, or when no incremental path
        was available).
    recustomized:
        ``True`` when an incrementally recustomized overlay was
        installed under the new network fingerprint; ``False`` means the
        next query pays a full preprocessing rebuild (non-overlay
        engine, or no cached artifact to start from).
    fingerprint:
        Content fingerprint of the network *after* the update — the key
        the refreshed artifact is installed under (empty for a no-op
        update).
    previous_fingerprint:
        Fingerprint before the update; with ``epoch=True`` this is the
        retired epoch's key, which the caller (the live traffic
        pipeline) may eventually pass to
        :meth:`~repro.service.cache.PreprocessingCache.invalidate_fingerprint`
        once no in-flight batch can still reference it.
    epoch:
        The stack's epoch sequence number after the update (0 for a
        legacy in-place update, which does not advance the epoch).
    """

    edges: int
    touched_cells: tuple[int, ...]
    recustomized: bool
    fingerprint: str = ""
    previous_fingerprint: str = ""
    epoch: int = 0


class ConcurrentDispatcher:
    """Evaluates independent obfuscated queries across a thread pool.

    Each worker thread lazily builds its own MSMD processor handle via
    ``handle_factory`` (processors are cheap; artifacts are shared
    through the :class:`~repro.service.cache.PreprocessingCache`), so no
    processor instance is ever shared between threads.

    Parameters
    ----------
    handle_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.search.multi.MultiSourceMultiDestProcessor`.
    max_workers:
        Thread-pool size; 1 degenerates to serial evaluation (no pool is
        created), which is the determinism baseline.
    """

    def __init__(
        self,
        handle_factory,
        max_workers: int = 4,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._factory = handle_factory
        self._max_workers = max_workers
        self._local = threading.local()
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()

    @property
    def max_workers(self) -> int:
        """Configured thread-pool size."""
        return self._max_workers

    def _handle(self) -> MultiSourceMultiDestProcessor:
        """This thread's private engine handle (built on first use)."""
        handle = getattr(self._local, "handle", None)
        if handle is None:
            handle = self._factory()
            self._local.handle = handle
        return handle

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-serving",
                )
            return self._executor

    def _evaluate(
        self,
        network,
        query: ObfuscatedPathQuery,
        artifact: object,
        tracer=NULL_TRACER,
        parent=None,
        cell: int | None = None,
    ) -> MSMDResult:
        handle = self._handle()
        if artifact is not None and isinstance(handle, PreprocessingProcessor):
            handle.use_artifact(artifact)
        with tracer.span(
            "serve.worker",
            parent=parent,
            num_sources=len(query.sources),
            num_destinations=len(query.destinations),
        ) as worker:
            if cell is not None:
                worker.set("cell", cell)
            with tracer.span("engine.process", parent=worker) as kernel:
                result = handle.process(
                    network, list(query.sources), list(query.destinations)
                )
                stats = result.stats
                kernel.set("settled_nodes", stats.settled_nodes)
                kernel.set("relaxed_edges", stats.relaxed_edges)
                kernel.set("heap_pushes", stats.heap_pushes)
        return result

    def dispatch(
        self,
        network,
        queries: Sequence[ObfuscatedPathQuery],
        artifact: object = None,
        tracer=None,
        parent=None,
        cells: Sequence[int | None] | None = None,
    ) -> list[MSMDResult]:
        """Evaluate every query, returning results in submission order.

        Parameters
        ----------
        network:
            Road network the queries run against.
        queries:
            Independent obfuscated queries (no ordering constraints
            between them; each is a self-contained MSMD evaluation).
        artifact:
            Optional preprocessing artifact injected into each worker's
            handle (from the serving stack's preprocessing cache).
        tracer, parent:
            Optional :class:`~repro.obs.trace.Tracer` and parent span:
            each evaluation then runs inside a ``serve.worker`` span
            (child ``engine.kernel`` carries the search counters)
            attached under ``parent``, from whichever thread ran it.
        cells:
            Optional per-query partition cell hints (aligned with
            ``queries``), recorded as the worker span's ``cell`` attr.

        Returns
        -------
        list of MSMDResult
            ``results[i]`` answers ``queries[i]``; identical to what
            serial evaluation would produce.
        """
        if not queries:
            return []
        if tracer is None:
            tracer = NULL_TRACER
        if cells is None:
            cells = [None] * len(queries)
        if self._max_workers == 1 or len(queries) == 1:
            return [
                self._evaluate(network, q, artifact, tracer, parent, cell)
                for q, cell in zip(queries, cells)
            ]
        pool = self._pool()
        futures = [
            pool.submit(self._evaluate, network, q, artifact, tracer, parent, cell)
            for q, cell in zip(queries, cells)
        ]
        return [f.result() for f in futures]

    def evaluate_union(
        self,
        network,
        set_queries: Sequence[tuple[tuple, tuple]],
        artifact: object = None,
    ) -> UnionPassResult:
        """Answer several set queries in one shared union pass.

        Runs on the calling thread with its private engine handle (a
        union pass is already the merged evaluation — there is nothing
        left to parallelize across the pool); see
        :meth:`repro.search.multi.MultiSourceMultiDestProcessor.process_union`
        for the exactness contract.
        """
        handle = self._handle()
        if artifact is not None and isinstance(handle, PreprocessingProcessor):
            handle.use_artifact(artifact)
        return handle.process_union(network, set_queries)

    def shutdown(self) -> None:
        """Tear down the thread pool (idempotent; a later dispatch rebuilds it)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None


@dataclass(frozen=True, slots=True)
class CoalesceConfig:
    """Knobs of the serving stack's cross-session query coalescer.

    Attributes
    ----------
    max_batch:
        Count threshold: a window flushes as soon as this many queries
        are pending, evaluated as one shared union pass.
    max_wait_s:
        Time threshold: a submitter whose window has not filled by this
        many seconds (measured on ``clock``) flushes whatever is
        pending, bounding the latency cost of waiting for window-mates.
    clock:
        Monotonic time source used for the window deadline.  Tests
        inject a fake clock to drive window expiry deterministically;
        production uses :func:`time.monotonic`.
    """

    max_batch: int = 8
    max_wait_s: float = 0.002
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass(frozen=True, slots=True)
class CoalesceSnapshot:
    """Point-in-time counters of a :class:`QueryCoalescer`.

    Attributes
    ----------
    windows:
        Micro-batch windows flushed so far.
    queries:
        Obfuscated queries answered through the coalescer.
    shared_windows:
        Windows whose union pass merged >= 2 distinct queries (actual
        cross-query sharing happened).
    coalesced_queries:
        Queries answered by a shared union pass (their responses carry
        ``coalesced=True``).
    union_pairs:
        Deterministic work counter: distinct ``(s, t)`` pairs evaluated
        by union kernel passes (compare against the ``sum |S_i|x|T_i|``
        a per-session dispatch would have paid).
    max_window:
        Largest window flushed.
    """

    windows: int = 0
    queries: int = 0
    shared_windows: int = 0
    coalesced_queries: int = 0
    union_pairs: int = 0
    max_window: int = 0

    @property
    def mean_window(self) -> float:
        """Average queries per flushed window (0 when idle)."""
        return self.queries / self.windows if self.windows else 0.0

    def to_dict(self) -> dict:
        """Stable-key report shape (see ``docs/API.md``).

        Every report surface (``serve-replay``, ``obs-report``, the
        gateway's ``/v1/metrics``) emits this one shape: a ``schema``
        version stamp, a ``kind`` discriminator and flat counters.
        """
        return {
            "schema": 1,
            "kind": "coalesce_snapshot",
            "windows": self.windows,
            "queries": self.queries,
            "shared_windows": self.shared_windows,
            "coalesced_queries": self.coalesced_queries,
            "union_pairs": self.union_pairs,
            "max_window": self.max_window,
            "mean_window": self.mean_window,
        }


class _Ticket:
    """One in-flight coalesced query and its rendezvous event."""

    __slots__ = ("query", "event", "response", "error")

    def __init__(self, query: ObfuscatedPathQuery) -> None:
        self.query = query
        self.event = threading.Event()
        self.response: ServerResponse | None = None
        self.error: Exception | None = None


class QueryCoalescer:
    """Micro-batching window merging concurrent queries into union passes.

    Arrivals from any thread (any session) are parked in a pending
    window.  The window closes when ``max_batch`` queries are pending
    (count threshold — the closing submitter evaluates inline) or when a
    parked submitter's ``max_wait_s`` deadline expires (time threshold —
    the earliest waiter flushes).  A closed window is answered by
    :meth:`ServingStack._coalesced_window`: result-cache consultation
    per query, one shared union kernel pass over the distinct misses,
    exact per-query slicing, per-query cache population.

    Determinism: the *partition* of arrivals into windows depends on
    timing, but every response is byte-identical to the serial answer
    for any partition, so concurrency never changes what a session
    receives (the property suite locks this down for arbitrary
    partitions).  Tests drive partitions explicitly via ``max_batch``,
    :meth:`flush`, or an injected :attr:`CoalesceConfig.clock`.
    """

    def __init__(self, stack: "ServingStack", config: CoalesceConfig) -> None:
        self._stack = stack
        self.config = config
        self._lock = threading.Lock()
        self._pending: list[_Ticket] = []
        # Live counters are registry instruments (``repro_coalesce_*``)
        # on the stack's registry; snapshot() assembles the same
        # CoalesceSnapshot shape as before from their values.
        reg = stack.metrics
        self._m_windows = reg.counter(
            "repro_coalesce_windows_total",
            desc="micro-batch windows flushed",
        )
        self._m_queries = reg.counter(
            "repro_coalesce_queries_total",
            desc="queries answered through the coalescer",
        )
        self._m_shared_windows = reg.counter(
            "repro_coalesce_shared_windows_total",
            desc="windows whose union pass merged >= 2 distinct queries",
        )
        self._m_coalesced_queries = reg.counter(
            "repro_coalesce_coalesced_queries_total",
            desc="queries answered by a shared union pass",
        )
        self._m_union_pairs = reg.counter(
            "repro_coalesce_union_pairs_total",
            desc="distinct (s, t) pairs evaluated by union passes",
        )
        self._m_max_window = reg.gauge(
            "repro_coalesce_max_window",
            desc="largest window flushed",
        )

    def submit_many(
        self, queries: Sequence[ObfuscatedPathQuery]
    ) -> list[ServerResponse]:
        """Enqueue ``queries`` and block until every one is answered.

        The whole argument enters the current window atomically (a
        session's own batch always coalesces with itself).  Raises the
        per-query error (e.g. :class:`~repro.exceptions.NoPathError`)
        of the first failing query, like serial evaluation would.
        """
        if not queries:
            return []
        tickets = [_Ticket(query) for query in queries]
        closed: list[_Ticket] | None = None
        with self._lock:
            self._pending.extend(tickets)
            if len(self._pending) >= self.config.max_batch:
                closed, self._pending = self._pending, []
        if closed is not None:
            self._run_window(closed)
        clock = self.config.clock
        deadline = clock() + self.config.max_wait_s
        for ticket in tickets:
            while not ticket.event.is_set():
                remaining = deadline - clock()
                if remaining > 0:
                    ticket.event.wait(remaining)
                    continue
                self.flush()
                if not ticket.event.is_set():
                    # Drained by another thread's window, still being
                    # evaluated there — wait for its result.
                    ticket.event.wait()
        responses: list[ServerResponse] = []
        for ticket in tickets:
            if ticket.error is not None:
                raise ticket.error
            assert ticket.response is not None
            responses.append(ticket.response)
        return responses

    def flush(self) -> int:
        """Force-close the open window; returns how many queries it held."""
        with self._lock:
            closed, self._pending = self._pending, []
        if closed:
            self._run_window(closed)
        return len(closed)

    def _run_window(self, tickets: list[_Ticket]) -> None:
        """Answer one closed window and wake its submitters."""
        try:
            outcomes, unique_misses, union_pairs = (
                self._stack._coalesced_window([t.query for t in tickets])
            )
        except BaseException as exc:  # never strand a parked submitter
            for ticket in tickets:
                ticket.error = exc if isinstance(exc, Exception) else (
                    RuntimeError(f"coalesced window died: {exc!r}")
                )
                ticket.event.set()
            raise
        coalesced = 0
        for ticket, outcome in zip(tickets, outcomes):
            if isinstance(outcome, Exception):
                ticket.error = outcome
            else:
                ticket.response = outcome
                if outcome.coalesced:
                    coalesced += 1
            ticket.event.set()
        with self._lock:
            self._m_windows.inc()
            self._m_queries.inc(len(tickets))
            self._m_union_pairs.inc(union_pairs)
            self._m_max_window.set_max(len(tickets))
            if unique_misses >= 2:
                self._m_shared_windows.inc()
                self._m_coalesced_queries.inc(coalesced)

    def snapshot(self) -> CoalesceSnapshot:
        """Current counters as a :class:`CoalesceSnapshot`."""
        with self._lock:
            return CoalesceSnapshot(
                windows=self._m_windows.value,
                queries=self._m_queries.value,
                shared_windows=self._m_shared_windows.value,
                coalesced_queries=self._m_coalesced_queries.value,
                union_pairs=self._m_union_pairs.value,
                max_window=int(self._m_max_window.value),
            )


@dataclass(frozen=True, slots=True)
class ServingConfig:
    """Frozen construction-time knobs of a :class:`ServingStack`.

    The one value that describes how to build a stack — pass it to
    :meth:`ServingStack.from_config`, ship it across process boundaries
    (it is picklable; the network gateway sends it to shard workers), or
    embed it in a deployment manifest.  Runtime collaborators that hold
    live state (pre-built caches, a shared
    :class:`~repro.obs.metrics.MetricsRegistry`, a tracer) stay keyword
    arguments of :meth:`~ServingStack.from_config` — they are wiring,
    not configuration.

    Attributes
    ----------
    engine:
        Name from the :data:`repro.search.ENGINES` registry.
    max_workers:
        Dispatcher thread-pool size (1 = serial).
    coalesce:
        Optional :class:`CoalesceConfig` enabling the cross-session
        query coalescer.
    spill_dir:
        Disk-spill directory for the preprocessing cache (also the
        artifact handoff channel between gateway shard workers).
    preprocessing_capacity:
        In-memory artifact slots of the preprocessing cache (>= 1).
    result_capacity:
        Result-table slots of the result cache (0 disables it).
    customize_workers:
        Worker *processes* for parallel overlay (re)customization
        (:class:`~repro.search.parallel.ParallelCustomizer`).  ``0``
        (default) and ``1`` keep the serial loops; ``>= 2`` gives the
        stack a persistent pool that :meth:`ServingStack.reweight` fans
        touched-cell clique work out to.  Results are byte-identical to
        serial, so this is purely a throughput knob.
    """

    engine: str = "dijkstra"
    max_workers: int = 4
    coalesce: CoalesceConfig | None = None
    spill_dir: str | None = None
    preprocessing_capacity: int = 8
    result_capacity: int = 256
    customize_workers: int = 0

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.preprocessing_capacity < 1:
            raise ValueError("preprocessing_capacity must be >= 1")
        if self.result_capacity < 0:
            raise ValueError("result_capacity must be >= 0")
        if self.customize_workers < 0:
            raise ValueError("customize_workers must be >= 0")

    def to_dict(self) -> dict:
        """Stable-key report shape (see ``docs/API.md``)."""
        return {
            "schema": 1,
            "kind": "serving_config",
            "engine": self.engine,
            "max_workers": self.max_workers,
            "coalesce": (
                None
                if self.coalesce is None
                else {
                    "max_batch": self.coalesce.max_batch,
                    "max_wait_s": self.coalesce.max_wait_s,
                }
            ),
            "spill_dir": (
                str(self.spill_dir) if self.spill_dir is not None else None
            ),
            "preprocessing_capacity": self.preprocessing_capacity,
            "result_capacity": self.result_capacity,
            "customize_workers": self.customize_workers,
        }


class ServingStack:
    """Thread-safe caching/concurrency layer in front of a directions server.

    The stack owns a :class:`~repro.core.server.DirectionsServer` and
    answers obfuscated queries through two caches and a dispatcher; see
    the module docstring for the architecture.  Hand the stack to
    :class:`~repro.core.system.OpaqueSystem` (``serving=`` parameter) to
    run the full client→obfuscator→server→filter pipeline over it, or
    call :meth:`answer`/:meth:`answer_batch` directly to drive the
    server side alone.

    Construct stacks through :meth:`from_config`: one frozen
    :class:`ServingConfig` carries every construction-time knob, and the
    keyword arguments below that hold live collaborators (caches,
    metrics, tracer) ride alongside it.  The legacy keyword form
    (``ServingStack(net, engine=..., max_workers=...)``) still works but
    emits a single :class:`DeprecationWarning`.

    Parameters
    ----------
    network:
        The server's road network (shared by every component).
    config:
        A :class:`ServingConfig`; when ``None`` (the deprecated path)
        one is synthesized from the legacy keyword arguments.
    engine:
        Name from the :data:`repro.search.ENGINES` registry; decides
        both the preprocessing artifact and the per-worker MSMD handles.
        *(deprecated — set on* :class:`ServingConfig` *)*
    preprocessing_cache, result_cache:
        Preconfigured caches, e.g. shared across several stacks serving
        different networks; fresh defaults otherwise.
    max_workers:
        Dispatcher thread-pool size (1 = serial).
        *(deprecated — set on* :class:`ServingConfig` *)*
    spill_dir:
        Disk-spill directory for the default preprocessing cache
        (ignored when ``preprocessing_cache`` is given).
        *(deprecated — set on* :class:`ServingConfig` *)*
    coalesce:
        A :class:`CoalesceConfig` to enable the cross-session
        :class:`QueryCoalescer`: concurrent queries (from any thread or
        session) are merged into shared union kernel passes and sliced
        back per session, byte-identical to serial answers.  ``None``
        (default) keeps the per-query dispatch path.
    metrics:
        Shared :class:`~repro.obs.metrics.MetricsRegistry`; a private
        one is created otherwise.  The stack's server, coalescer and the
        caches it creates (pre-supplied caches keep their own registry)
        all register their instruments here, so one
        ``registry.to_json()`` / ``to_prometheus()`` call exposes the
        whole stack.
    tracer:
        A :class:`~repro.obs.trace.Tracer` to record per-query span
        trees (``serve.answer_batch`` → ``serve.cache_consult`` →
        ``serve.worker`` → ``engine.process``; coalesced windows root
        their own ``serve.coalesce_window`` trees since one window may
        serve several sessions).  ``None`` (default) uses a shared no-op
        tracer with no recording overhead.

    Notes
    -----
    Paged networks are not supported here: page-fault accounting is a
    per-query experiment instrument, while the stack exists to elide
    repeated work — combining them would produce misleading I/O numbers.
    """

    def __init__(
        self,
        network,
        engine: str = "dijkstra",
        preprocessing_cache: PreprocessingCache | None = None,
        result_cache: ResultCache | None = None,
        max_workers: int = 4,
        spill_dir=None,
        coalesce: CoalesceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        *,
        config: ServingConfig | None = None,
    ) -> None:
        from repro.search import get_engine

        if config is None:
            # The single deprecation path: every legacy keyword
            # construction funnels through here, so one filter catches
            # them all (the test suite turns it into an error).
            warnings.warn(
                "ServingStack(engine=..., max_workers=...) keyword "
                "construction is deprecated; build a ServingConfig and "
                "call ServingStack.from_config(network, config)",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ServingConfig(
                engine=engine,
                max_workers=max_workers,
                coalesce=coalesce,
                spill_dir=(
                    str(spill_dir) if spill_dir is not None else None
                ),
            )
        #: the frozen construction-time knobs this stack was built from
        self.config = config
        self.network = network
        self.engine_name = config.engine
        self._engine = get_engine(config.engine)
        #: registry collecting every component's instruments
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: the live tracer, or None when tracing is off
        self.tracer = tracer
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._m_batch_seconds = self.metrics.histogram(
            "repro_serve_batch_seconds",
            desc="answer_batch wall latency (seconds)",
        )
        self.preprocessing = (
            preprocessing_cache
            if preprocessing_cache is not None
            else PreprocessingCache(
                capacity=config.preprocessing_capacity,
                spill_dir=config.spill_dir,
                metrics=self.metrics,
            )
        )
        self.results = (
            result_cache
            if result_cache is not None
            else ResultCache(
                capacity=config.result_capacity, metrics=self.metrics
            )
        )
        self.dispatcher = ConcurrentDispatcher(
            self._engine.make_processor, max_workers=config.max_workers
        )
        self.server = DirectionsServer(
            network,
            processor=self._engine.make_processor(),
            metrics=self.metrics,
        )
        #: cross-session micro-batching window, or None when disabled
        self.coalescer = (
            QueryCoalescer(self, config.coalesce)
            if config.coalesce is not None
            else None
        )
        #: persistent parallel-customization pool, or None (serial)
        self.customizer = None
        if config.customize_workers >= 2:
            from repro.search.parallel import ParallelCustomizer

            self.customizer = ParallelCustomizer(
                config.customize_workers,
                metrics=self.metrics,
                tracer=self._tracer,
            )
        self._lock = threading.Lock()
        self._fingerprint_memo: tuple[int, str] | None = None
        self._epoch = 0
        self._m_epoch = self.metrics.gauge(
            "repro_serve_epoch",
            desc="sequence number of the installed network epoch",
        )

    @classmethod
    def from_config(
        cls,
        network,
        config: ServingConfig | None = None,
        *,
        preprocessing_cache: PreprocessingCache | None = None,
        result_cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> "ServingStack":
        """Build a stack from a frozen :class:`ServingConfig`.

        The non-deprecated constructor.  ``config`` defaults to
        ``ServingConfig()``; the keyword arguments carry live
        collaborators that cannot live on a frozen config (pre-built
        caches shared across stacks, a shared metrics registry, a
        tracer).
        """
        return cls(
            network,
            preprocessing_cache=preprocessing_cache,
            result_cache=result_cache,
            metrics=metrics,
            tracer=tracer,
            config=config if config is not None else ServingConfig(),
        )

    @property
    def epoch(self) -> int:
        """Sequence number of the currently installed network epoch.

        0 until the first :meth:`install_epoch` (or
        ``reweight(..., epoch=True)``); each atomic handoff increments
        it.  Legacy in-place mutations do not advance the epoch.
        """
        with self._lock:
            return self._epoch

    def _epoch_view(self) -> tuple[object, str]:
        """Atomically capture ``(network, fingerprint)`` for one batch.

        The epoch-handoff read side: a batch resolves both under the
        stack lock so a concurrent :meth:`install_epoch` can never hand
        it network A with network B's fingerprint.  The batch then runs
        entirely against the captured pair — in-flight work finishes on
        the old epoch's snapshot while new batches pick up the new one.
        """
        with self._lock:
            return self.network, self._fingerprint()

    def install_epoch(
        self, network, artifact: object = None, fingerprint: str | None = None
    ) -> str:
        """Atomically switch serving to a new network snapshot.

        The epoch-handoff write side, used by
        ``reweight(..., epoch=True)`` and the live traffic pipeline
        (:mod:`repro.service.pipeline`): the artifact (when given) is
        installed in the preprocessing cache under the snapshot's
        fingerprint *first*, then the stack's ``network`` reference,
        fingerprint memo and epoch counter advance in one locked step.
        Batches that captured the previous epoch's view keep serving its
        (now unreferenced, still immutable) snapshot; the next
        :meth:`answer_batch` sees the new one.  Returns the new epoch's
        fingerprint.
        """
        if fingerprint is None:
            fingerprint = network_fingerprint(network)
        if artifact is not None:
            self.preprocessing.put(fingerprint, self.engine_name, artifact)
        version = getattr(network, "version", None)
        with self._lock:
            self.network = network
            self._fingerprint_memo = (
                (version, fingerprint) if version is not None else None
            )
            self._epoch += 1
            self._m_epoch.set(self._epoch)
        return fingerprint

    def _fingerprint(self) -> str:
        """This network's content fingerprint, memoized by mutation version.

        Networks exposing a ``version`` stamp (every
        :class:`~repro.network.graph.RoadNetwork`) are only rehashed
        after a mutation, making warm lookups O(1) in graph size;
        version-less network views fall back to hashing per call.
        """
        version = getattr(self.network, "version", None)
        if version is None:
            return network_fingerprint(self.network)
        memo = self._fingerprint_memo
        if memo is None or memo[0] != version:
            memo = (version, network_fingerprint(self.network))
            self._fingerprint_memo = memo
        return memo[1]

    def warm(self) -> object:
        """Build (or fetch) this network's preprocessing artifact now.

        Useful to pay the build cost at deploy time instead of on the
        first query; returns the artifact (``None`` for engines without
        preprocessing).  A configured parallel-customization pool is
        warmed here too, so the first re-weight window never pays the
        fork/spawn cost.
        """
        if self.customizer is not None:
            self.customizer.warm()
        return self.preprocessing.get(
            self.network, self.engine_name, fingerprint=self._fingerprint()
        )

    def answer(self, query: ObfuscatedPathQuery) -> ServerResponse:
        """Answer one obfuscated query through the caches.

        With coalescing enabled the query is parked in the current
        micro-batch window first, so it may share one union kernel pass
        with other sessions' concurrent queries.
        """
        return self.answer_batch([query])[0]

    def answer_batch(
        self, queries: Sequence[ObfuscatedPathQuery]
    ) -> list[ServerResponse]:
        """Answer a batch of independent obfuscated queries.

        With coalescing enabled (``coalesce=`` constructor parameter)
        the batch enters the :class:`QueryCoalescer` window — possibly
        merging with concurrent callers — and each response comes back
        byte-identical to what the per-query path below would produce.

        Cache hits are returned without search work; distinct misses are
        evaluated concurrently by the dispatcher (identical queries
        within the batch are deduplicated and share one evaluation),
        inserted into the result cache, and every query — hit or miss —
        is recorded in the underlying server's adversary view and load
        counters.

        The network fingerprint keying both caches is memoized against
        the network's mutation ``version``, so a warm batch costs O(1)
        in graph size; the graph is only rehashed after a mutation —
        which is exactly when stale tables must stop matching.

        Returns
        -------
        list of ServerResponse
            In submission order; ``response.from_cache`` tells whether
            the table was served without fresh search work (result-cache
            hit, or duplicate of another query in the same batch).
        """
        if not queries:
            return []
        if self.coalescer is not None:
            t0 = time.perf_counter()
            try:
                return self.coalescer.submit_many(list(queries))
            finally:
                self._m_batch_seconds.observe(time.perf_counter() - t0)
        t0 = time.perf_counter()
        try:
            return self._answer_batch_direct(queries)
        finally:
            self._m_batch_seconds.observe(time.perf_counter() - t0)

    def _answer_batch_direct(
        self, queries: Sequence[ObfuscatedPathQuery]
    ) -> list[ServerResponse]:
        """The per-query dispatch path of :meth:`answer_batch`."""
        with self._tracer.span(
            "serve.answer_batch",
            batch_size=len(queries),
            engine=self.engine_name,
        ) as root:
            network, fingerprint = self._epoch_view()
            responses: list[ServerResponse | None] = [None] * len(queries)
            with self._tracer.span(
                "serve.cache_consult", parent=root
            ) as consult:
                misses = self._consult_result_cache(
                    queries, fingerprint, responses
                )
                consult.set("unique_misses", len(misses))
                consult.set(
                    "hits",
                    len(queries) - sum(len(g) for g in misses.values()),
                )
            artifact = None
            if misses:
                artifact = self.preprocessing.get(
                    network, self.engine_name, fingerprint=fingerprint
                )
            miss_groups = list(misses.values())
            cell_of = None
            if isinstance(artifact, OverlayGraph):
                cell_of = artifact.partition.cell_of
            if len(miss_groups) > 1 and cell_of is not None:
                # Shard-aware dispatch: group this batch's misses by the
                # source cell so queries touching the same shard of the map
                # run back to back (locality for per-worker scratch and any
                # external sharding built on dispatch_hint).  Responses are
                # reassembled by batch index, so ordering is unobservable.
                miss_groups.sort(
                    key=lambda indices: (
                        _hint_sort_key(
                            cell_of.get(queries[indices[0]].sources[0])
                        ),
                        indices[0],
                    )
                )
            unique = [indices[0] for indices in miss_groups]
            cells = None
            if cell_of is not None:
                cells = [
                    cell_of.get(queries[i].sources[0]) for i in unique
                ]
            computed = self.dispatcher.dispatch(
                network,
                [queries[i] for i in unique],
                artifact,
                tracer=self._tracer,
                parent=root,
                cells=cells,
            )
            return self._record_batch(
                queries, fingerprint, responses, miss_groups, computed
            )

    def _record_batch(
        self,
        queries: Sequence[ObfuscatedPathQuery],
        fingerprint: str,
        responses: list[ServerResponse | None],
        miss_groups: list[list[int]],
        computed: list[MSMDResult],
    ) -> list[ServerResponse]:
        """Cache, record and order the responses of one direct batch."""
        with self._lock:
            for indices, result in zip(miss_groups, computed):
                first = queries[indices[0]]
                self.results.put(
                    fingerprint, first.sources, first.destinations,
                    self.engine_name, result,
                )
                for rank, i in enumerate(indices):
                    responses[i] = ServerResponse(
                        query=queries[i],
                        candidates=result,
                        from_cache=rank > 0,  # duplicates share the work
                    )
            final: list[ServerResponse] = []
            for i, response in enumerate(responses):
                if response is None:  # pragma: no cover - invariant guard
                    raise RuntimeError(
                        f"query {i} left unanswered by answer_batch"
                    )
                self.server.record(response)
                final.append(response)
        return final

    def _consult_result_cache(
        self,
        queries: Sequence[ObfuscatedPathQuery],
        fingerprint: str,
        outcomes: list,
    ) -> dict[tuple[tuple, tuple], list[int]]:
        """Resolve cache hits and collect the distinct misses of a batch.

        Fills ``outcomes[i]`` with a ``from_cache`` response for every
        result-cache hit and returns ``{(S, T): batch indices}`` for the
        misses — the first index of each key evaluates, later ones are
        in-batch duplicates counted as shared hits.  Shared by the
        per-query dispatch path (:meth:`answer_batch`) and the coalesced
        window path (:meth:`_coalesced_window`) so their cache semantics
        can never drift apart.
        """
        misses: dict[tuple[tuple, tuple], list[int]] = {}
        with self._lock:
            for i, query in enumerate(queries):
                key = (query.sources, query.destinations)
                if key in misses:  # in-batch duplicate: shares the work
                    misses[key].append(i)
                    self.results.count_shared_hit()
                    continue
                cached = self.results.get(
                    fingerprint, query.sources, query.destinations,
                    self.engine_name,
                )
                if cached is not None:
                    outcomes[i] = ServerResponse(
                        query=query, candidates=cached, from_cache=True
                    )
                else:
                    misses[key] = [i]
        return misses

    def _coalesced_window(
        self, queries: Sequence[ObfuscatedPathQuery]
    ) -> tuple[list[ServerResponse | Exception], int, int]:
        """Answer one closed coalescing window.

        The cache interplay mirrors :meth:`answer_batch` exactly —
        result-cache consultation per query, in-window duplicate
        deduplication, per-query cache population — but the distinct
        misses are evaluated by ONE shared union kernel pass instead of
        per-query dispatch.  Responses answered by a shared pass (>= 2
        distinct misses in the window) carry ``coalesced=True``.

        Returns ``(outcomes, unique_misses, union_pairs)`` where each
        outcome is a :class:`~repro.core.server.ServerResponse` or the
        exception evaluating that query alone would raise (an erroring
        query never poisons its window-mates).  Privacy-ordering
        invariant: each sliced table contains exactly its query's
        ``S x T`` pairs in that query's own wire order, so nothing about
        the window's other members is observable in any response.
        """
        with self._tracer.span(
            "serve.coalesce_window",
            window_size=len(queries),
            engine=self.engine_name,
        ) as root:
            network, fingerprint = self._epoch_view()
            outcomes: list[ServerResponse | Exception | None] = (
                [None] * len(queries)
            )
            with self._tracer.span(
                "serve.cache_consult", parent=root
            ) as consult:
                misses = self._consult_result_cache(
                    queries, fingerprint, outcomes
                )
                consult.set("unique_misses", len(misses))
                consult.set(
                    "hits",
                    len(queries) - sum(len(g) for g in misses.values()),
                )
            union: UnionPassResult | None = None
            if misses:
                artifact = self.preprocessing.get(
                    network, self.engine_name, fingerprint=fingerprint
                )
                unique = [queries[indices[0]] for indices in misses.values()]
                with self._tracer.span(
                    "engine.union",
                    parent=root,
                    num_queries=len(unique),
                ) as union_span:
                    union = self.dispatcher.evaluate_union(
                        network,
                        [(q.sources, q.destinations) for q in unique],
                        artifact,
                    )
                    union_span.set("union_pairs", union.pairs_computed)
                    union_span.set(
                        "settled_nodes", union.union_stats.settled_nodes
                    )
            root.set("unique_misses", len(misses))
        shared = len(misses) >= 2
        with self._lock:
            if union is not None:
                for indices, table, error in zip(
                    misses.values(), union.tables, union.errors
                ):
                    if error is not None:
                        for i in indices:
                            outcomes[i] = error
                        continue
                    first = queries[indices[0]]
                    self.results.put(
                        fingerprint, first.sources, first.destinations,
                        self.engine_name, table,
                    )
                    for rank, i in enumerate(indices):
                        outcomes[i] = ServerResponse(
                            query=queries[i],
                            candidates=table,
                            from_cache=rank > 0,
                            coalesced=shared,
                        )
            final: list[ServerResponse | Exception] = []
            for i, outcome in enumerate(outcomes):
                if outcome is None:  # pragma: no cover - invariant guard
                    raise RuntimeError(
                        f"query {i} left unanswered by the coalesced window"
                    )
                if isinstance(outcome, ServerResponse):
                    self.server.record(outcome)
                final.append(outcome)
        return final, len(misses), union.pairs_computed if union else 0

    def dispatch_hint(self, query: ObfuscatedPathQuery) -> int | None:
        """Shard hint for ``query``: the partition cell of its first source.

        Available when the engine's cached artifact is a partition
        overlay (``"overlay"``/``"overlay-csr"``); ``None`` otherwise.
        A fleet of stacks can use the hint to route queries to the
        replica owning that cell; a single stack uses it to group each
        batch's misses by cell before dispatching (see
        :meth:`answer_batch`).  Never builds preprocessing — a cold
        cache simply yields ``None``.
        """
        _, fingerprint = self._epoch_view()
        artifact = self.preprocessing.peek(fingerprint, self.engine_name)
        if isinstance(artifact, OverlayGraph):
            return artifact.partition.cell_of.get(query.sources[0])
        return None

    def reweight(
        self,
        changes: Sequence[tuple],
        recustomize: bool = True,
        epoch: bool = False,
    ) -> ReweightOutcome:
        """Apply a traffic update and refresh preprocessing incrementally.

        Each change ``(u, v, weight)`` re-weights an *existing* edge of
        the serving network (both directions on undirected networks).
        The mutation bumps the network's ``version``, so the content
        fingerprint changes and every cached artifact and result table
        for the old geometry stops matching — correctness needs nothing
        else.  The point of this method is the cost: when the engine's
        current artifact is a partition overlay, the touched cells'
        cliques are recustomized against the new weights
        (:meth:`~repro.search.overlay.OverlayGraph.recustomized`) and the
        updated overlay is installed under the new fingerprint via
        :meth:`~repro.service.cache.PreprocessingCache.put` — so the next
        query pays a per-cell refresh instead of a full rebuild.

        Two concurrency modes:

        * ``epoch=False`` (legacy): the serving network is mutated in
          place.  Call it between batches — mutating the network while
          queries are in flight is a data race on the graph itself, same
          as calling ``add_edge`` directly.
        * ``epoch=True``: copy-on-write.  The changes are applied to a
          *copy* of the serving network, the overlay is recustomized
          from that snapshot
          (:meth:`~repro.search.overlay.OverlayGraph.recustomized_on`),
          and the snapshot is installed atomically via
          :meth:`install_epoch`.  Safe to call while queries are in
          flight: batches that already captured the old epoch finish on
          its untouched network, new batches see the update.  This is
          the path the live traffic pipeline
          (:mod:`repro.service.pipeline`) drives from its background
          worker.

        Raises
        ------
        EdgeError
            If any ``(u, v)`` is not an existing edge (re-weighting
            never creates roads).
        """
        applied = [(u, v, float(w)) for u, v, w in changes]
        # Validate everything before applying anything: a bad entry must
        # not leave the network half-updated.
        for u, v, w in applied:
            if not self.network.has_edge(u, v):
                raise EdgeError(f"cannot reweight missing edge ({u!r}, {v!r})")
            if w < 0 or math.isnan(w) or math.isinf(w):
                raise EdgeError(
                    f"invalid weight {w} for edge ({u!r}, {v!r})"
                )
        if epoch:
            return self._reweight_epoch(applied, recustomize)
        old_fingerprint = self._fingerprint()
        old_artifact = self.preprocessing.peek(old_fingerprint, self.engine_name)
        for u, v, w in applied:
            self.network.add_edge(u, v, w)
        touched: tuple[int, ...] = ()
        recustomized = False
        if (
            recustomize
            and applied
            and isinstance(old_artifact, OverlayGraph)
            # A shared PreprocessingCache may hold an overlay built by a
            # *different* stack over a content-identical network object;
            # recustomizing it would read that other network's (un-mutated)
            # weights.  Only the overlay bound to our network is usable.
            and old_artifact.network is self.network
        ):
            cells = old_artifact.touched_cells(applied)
            overlay = old_artifact.recustomized(
                cells, changed_edges=applied, customizer=self.customizer
            )
            self.preprocessing.put(
                self._fingerprint(), self.engine_name, overlay
            )
            touched = tuple(sorted(cells))
            recustomized = True
        elif applied and self.customizer is not None:
            # The pool never saw this re-weight (recustomize off, the
            # artifact evicted, or a foreign overlay in a shared cache):
            # fold the changes into its cumulative delta map so the next
            # pooled recustomize still computes from current weights
            # instead of the blob's stale ones.
            self.customizer.note_changes(self.network, applied)
        return ReweightOutcome(
            edges=len(applied),
            touched_cells=touched,
            recustomized=recustomized,
            fingerprint=self._fingerprint() if applied else old_fingerprint,
            previous_fingerprint=old_fingerprint,
        )

    def _reweight_epoch(
        self, applied: list[tuple], recustomize: bool
    ) -> ReweightOutcome:
        """The copy-on-write half of :meth:`reweight` (``epoch=True``)."""
        old_network, old_fingerprint = self._epoch_view()
        if not applied:
            return ReweightOutcome(
                edges=0,
                touched_cells=(),
                recustomized=False,
                fingerprint=old_fingerprint,
                previous_fingerprint=old_fingerprint,
                epoch=self.epoch,
            )
        old_artifact = self.preprocessing.peek(old_fingerprint, self.engine_name)
        snapshot = old_network.copy()
        for u, v, w in applied:
            snapshot.add_edge(u, v, w)
        touched: tuple[int, ...] = ()
        overlay = None
        if (
            recustomize
            and isinstance(old_artifact, OverlayGraph)
            # Same binding guard as the in-place path: only an overlay
            # reading *this* epoch's weights can donate untouched cells.
            and old_artifact.network is old_network
        ):
            cells = old_artifact.touched_cells(applied)
            overlay = old_artifact.recustomized_on(
                snapshot, cells, changed_edges=applied,
                customizer=self.customizer,
            )
            touched = tuple(sorted(cells))
        elif self.customizer is not None:
            # Same coherence rule as the in-place path: a re-weight the
            # pool did not customize must still land in its delta map,
            # or the next pooled refresh serves pre-change weights.
            self.customizer.note_changes(snapshot, applied)
        new_fingerprint = self.install_epoch(snapshot, artifact=overlay)
        return ReweightOutcome(
            edges=len(applied),
            touched_cells=touched,
            recustomized=overlay is not None,
            fingerprint=new_fingerprint,
            previous_fingerprint=old_fingerprint,
            epoch=self.epoch,
        )

    def coalesce_snapshot(self) -> CoalesceSnapshot | None:
        """The coalescer's counters, or ``None`` when coalescing is off."""
        return self.coalescer.snapshot() if self.coalescer else None

    def snapshot(self) -> CacheSnapshot:
        """Combined counters of both caches."""
        pre = self.preprocessing.snapshot()
        res = self.results.snapshot()
        return CacheSnapshot(
            preprocessing_hits=pre.preprocessing_hits,
            preprocessing_misses=pre.preprocessing_misses,
            preprocessing_evictions=pre.preprocessing_evictions,
            preprocessing_disk_loads=pre.preprocessing_disk_loads,
            result_hits=res.result_hits,
            result_misses=res.result_misses,
            result_evictions=res.result_evictions,
        )

    def close(self) -> None:
        """Flush any open coalescing window and shut down the pools."""
        if self.coalescer is not None:
            self.coalescer.flush()
        self.dispatcher.shutdown()
        if self.customizer is not None:
            self.customizer.close()

    def __enter__(self) -> "ServingStack":
        """Enter a ``with`` block (no setup needed)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Leave a ``with`` block, shutting the thread pool down."""
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServingStack(engine={self.engine_name!r}, "
            f"workers={self.dispatcher.max_workers}, "
            f"network={self.network!r})"
        )


def _hint_sort_key(hint: int | None) -> tuple[int, int]:
    """Sortable form of a dispatch hint (``None`` groups last)."""
    return (1, 0) if hint is None else (0, hint)


@dataclass(slots=True)
class ReplayReport:
    """Latency and cache outcome of one workload replay.

    Attributes
    ----------
    latencies:
        Wall-clock seconds per obfuscated query, in replay order.  When
        replaying in batches, every member of a batch is charged the
        batch's completion time (the moment its answer exists).
    total_seconds:
        Wall-clock duration of the whole replay.
    queries:
        Obfuscated queries served.
    cache:
        The stack's cumulative :class:`CacheSnapshot` after the replay.
    """

    latencies: list[float] = field(default_factory=list)
    total_seconds: float = 0.0
    queries: int = 0
    cache: CacheSnapshot = field(default_factory=CacheSnapshot)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile of per-query latency (0 when empty)."""
        return percentile(sorted(self.latencies), q)

    @property
    def p50_latency(self) -> float:
        """Median per-query latency in seconds."""
        return self.percentile(0.50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile per-query latency in seconds."""
        return self.percentile(0.95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile per-query latency in seconds."""
        return self.percentile(0.99)

    def to_dict(self) -> dict:
        """Stable-key report shape (see ``docs/API.md``).

        The same ``{"schema", "kind", ...counters}`` contract as every
        other report surface; raw per-query latencies stay off the wire
        (they are a measurement buffer, not a report).
        """
        return {
            "schema": 1,
            "kind": "replay_report",
            "queries": self.queries,
            "total_seconds": self.total_seconds,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "p99_latency_s": self.p99_latency,
            "cache": self.cache.to_dict(),
        }


def replay(
    stack: ServingStack,
    queries: Sequence[ObfuscatedPathQuery],
    repeats: int = 1,
    batch_size: int = 1,
    clock: Callable[[], float] = time.perf_counter,
) -> ReplayReport:
    """Replay a fixed obfuscated-query workload through a serving stack.

    The stream is served ``repeats`` times in order, ``batch_size``
    queries per concurrent batch.  The first pass is the cold run (cache
    misses build the artifact and fill the result cache); later passes
    measure the warm behavior a long-lived service sees.

    Parameters
    ----------
    stack:
        The serving stack under test.
    queries:
        The server-visible workload (e.g. obfuscated once from a
        workload file; see :mod:`repro.workloads.replay`).
    repeats:
        Total passes over the stream (>= 1).
    batch_size:
        Queries dispatched per :meth:`ServingStack.answer_batch` call
        (>= 1); the dispatcher parallelizes within a batch.
    clock:
        Time source for the latency measurements (the
        :attr:`CoalesceConfig.clock` pattern).  Tests inject a stepping
        clock to assert exact report numbers; production uses
        :func:`time.perf_counter`.

    Returns
    -------
    ReplayReport
        Per-query latencies plus the stack's cache snapshot.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    report = ReplayReport()
    start = clock()
    for _ in range(repeats):
        for offset in range(0, len(queries), batch_size):
            batch = list(queries[offset : offset + batch_size])
            t0 = clock()
            stack.answer_batch(batch)
            elapsed = clock() - t0
            report.latencies.extend([elapsed] * len(batch))
            report.queries += len(batch)
    report.total_seconds = clock() - start
    report.cache = stack.snapshot()
    return report
