"""Serving-layer caches: preprocessing artifacts and many-to-many results.

A production directions service answers the same road network for
millions of sessions, so paying preprocessing (CH contraction, ALT
landmark selection) per session — as a fresh
:class:`~repro.core.system.OpaqueSystem` does — is the dominant waste on
the hot path.  This module provides the two thread-safe LRU caches the
:class:`~repro.service.serving.ServingStack` puts in front of the
:class:`~repro.core.server.DirectionsServer`:

* :class:`PreprocessingCache` — keyed by ``(network fingerprint,
  engine)``, holding whatever :meth:`SearchEngine.prepare` built
  (contracted graph, landmark index, partition overlay).  Contracted
  graphs evicted from memory spill to disk via
  :mod:`repro.search.ch.persist`; partition overlays and CSR snapshots
  spill as the page-aligned binary blobs of :mod:`repro.service.blob`
  and reload through one ``mmap`` — no text parsing, and CSR arrays
  stay mapping-backed so a cold load faults in only the pages queries
  touch.  Either way a reload on the next miss means an evicted
  network never pays preprocessing twice.  :meth:`PreprocessingCache.put` additionally accepts
  externally built artifacts — the hook the serving stack's targeted
  re-customization path (:meth:`~repro.service.serving.ServingStack.reweight`)
  uses to install an incrementally updated overlay under the mutated
  network's new fingerprint instead of rebuilding from scratch.
* :class:`ResultCache` — keyed by ``(network fingerprint, S, T,
  engine)``, holding whole :class:`~repro.search.multi.MSMDResult`
  tables.  Obfuscated queries recur (popular routes, shared-mode
  clusters, replayed workloads); a hit answers ``|S| x |T|`` path
  queries with zero search work.

Both caches expose hit/miss/eviction counters, combined into a
:class:`CacheSnapshot` that :class:`~repro.core.system.SessionReport`
and :class:`~repro.service.simulator.ServiceReport` surface.

The network fingerprint is content-based (:func:`network_fingerprint`),
so mutating a network — adding a road, reweighting an edge — changes the
key and transparently invalidates every artifact *and result table*
built for the old geometry.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.network.graph import NodeId
from repro.obs.metrics import MetricsRegistry
from repro.search.multi import MSMDResult

__all__ = [
    "network_fingerprint",
    "CacheSnapshot",
    "PreprocessingCache",
    "ResultCache",
]


def network_fingerprint(network) -> str:
    """Content hash identifying a road network's exact geometry.

    Parameters
    ----------
    network:
        Any object with the :class:`~repro.network.graph.RoadNetwork`
        read API (``directed``, ``nodes()``, ``edges()``, ``position()``).

    Returns
    -------
    str
        A 32-hex-digit BLAKE2b digest over the directedness flag, every
        node with its position, and every edge with its weight.  Two
        networks with identical content share a fingerprint regardless of
        object identity or insertion order; any mutation (new node, new
        edge, changed weight) produces a different one.

    Notes
    -----
    Computing the fingerprint is ``O((N + E) log(N + E))`` — cheap next
    to any preprocessing it guards, and recomputed on every cache lookup
    precisely so that in-place network mutations invalidate stale
    artifacts.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"directed\x00" if network.directed else b"undirected\x00")
    node_lines = []
    for node in network.nodes():
        p = network.position(node)
        node_lines.append(f"n {node!r} {p.x!r} {p.y!r}")
    for line in sorted(node_lines):
        digest.update(line.encode("utf-8"))
        digest.update(b"\x00")
    edge_lines = []
    for u, v, w in network.edges():
        if not network.directed and repr(v) < repr(u):
            u, v = v, u
        edge_lines.append(f"e {u!r} {v!r} {w!r}")
    for line in sorted(edge_lines):
        digest.update(line.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class CacheSnapshot:
    """Point-in-time counters of the serving layer's two caches.

    Attributes
    ----------
    preprocessing_hits, preprocessing_misses, preprocessing_evictions:
        :class:`PreprocessingCache` counters (cumulative).
    preprocessing_disk_loads:
        Misses that were satisfied by reloading a spilled artifact from
        disk instead of rebuilding it.
    result_hits, result_misses, result_evictions:
        :class:`ResultCache` counters (cumulative).
    """

    preprocessing_hits: int = 0
    preprocessing_misses: int = 0
    preprocessing_evictions: int = 0
    preprocessing_disk_loads: int = 0
    result_hits: int = 0
    result_misses: int = 0
    result_evictions: int = 0

    @property
    def preprocessing_hit_rate(self) -> float:
        """Fraction of preprocessing lookups served from memory (0 when unused)."""
        total = self.preprocessing_hits + self.preprocessing_misses
        return self.preprocessing_hits / total if total else 0.0

    @property
    def result_hit_rate(self) -> float:
        """Fraction of result lookups served from cache (0 when unused)."""
        total = self.result_hits + self.result_misses
        return self.result_hits / total if total else 0.0

    def to_dict(self) -> dict:
        """Stable-key report shape (see ``docs/API.md``)."""
        return {
            "schema": 1,
            "kind": "cache_snapshot",
            "preprocessing_hits": self.preprocessing_hits,
            "preprocessing_misses": self.preprocessing_misses,
            "preprocessing_evictions": self.preprocessing_evictions,
            "preprocessing_disk_loads": self.preprocessing_disk_loads,
            "preprocessing_hit_rate": self.preprocessing_hit_rate,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "result_evictions": self.result_evictions,
            "result_hit_rate": self.result_hit_rate,
        }


class PreprocessingCache:
    """Thread-safe LRU of per-network preprocessing artifacts.

    Keys are ``(network fingerprint, engine name)``; values are whatever
    the engine's ``prepare`` hook built (``None`` for engines that need
    no preprocessing — cached too, so the lookup is uniform).

    Parameters
    ----------
    capacity:
        Maximum artifacts held in memory (>= 1).
    spill_dir:
        Optional directory for disk spill.  On eviction, artifacts with
        a persistent format are written to ``<fingerprint>-<engine>``
        files (``.ch`` contracted graphs, ``.ovlb`` overlay blobs,
        ``.csrb`` CSR blobs); a later miss for the same key reloads the
        file instead of re-preprocessing.

    Examples
    --------
    >>> cache = PreprocessingCache(capacity=2)
    >>> cache.snapshot().preprocessing_hits
    0
    """

    def __init__(
        self,
        capacity: int = 8,
        spill_dir: str | os.PathLike[str] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._entries: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._lock = threading.RLock()
        #: registry holding the live hit/miss counters (private when not
        #: shared; sharing one registry across caches shares the counts)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_hits = self.metrics.counter(
            "repro_preprocessing_cache_hits_total",
            desc="preprocessing artifacts served from memory",
        )
        self._m_misses = self.metrics.counter(
            "repro_preprocessing_cache_misses_total",
            desc="preprocessing lookups that had to build or reload",
        )
        self._m_evictions = self.metrics.counter(
            "repro_preprocessing_cache_evictions_total",
            desc="artifacts evicted (and possibly spilled) by the LRU",
        )
        self._m_disk_loads = self.metrics.counter(
            "repro_preprocessing_cache_disk_loads_total",
            desc="misses satisfied by reloading a spilled artifact",
        )

    @property
    def hits(self) -> int:
        """Lookups served from memory (registry-backed)."""
        return self._m_hits.value

    @property
    def misses(self) -> int:
        """Lookups that built or reloaded the artifact (registry-backed)."""
        return self._m_misses.value

    @property
    def evictions(self) -> int:
        """LRU evictions so far (registry-backed)."""
        return self._m_evictions.value

    @property
    def disk_loads(self) -> int:
        """Misses satisfied from the spill directory (registry-backed)."""
        return self._m_disk_loads.value

    def __len__(self) -> int:
        """Number of artifacts currently held in memory."""
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        """Maximum artifacts held in memory."""
        return self._capacity

    def get(
        self, network, engine_name: str, fingerprint: str | None = None
    ) -> object:
        """The preprocessing artifact for ``(network, engine_name)``.

        Returns the cached artifact on a hit; otherwise reloads a spilled
        copy from disk or builds a fresh one via the engine's ``prepare``
        hook, inserts it (possibly evicting the least recently used
        entry), and returns it.  Misses build *outside* the cache lock,
        so a multi-second contraction never blocks hits on other keys;
        two threads racing on the same cold key may both build, and the
        first insert wins.

        Parameters
        ----------
        network:
            The road network queries will run against; fingerprinted on
            every call so mutations invalidate stale artifacts.
        engine_name:
            A name from the :data:`repro.search.ENGINES` registry.
        fingerprint:
            Precomputed :func:`network_fingerprint` of ``network``, when
            the caller already has one (avoids hashing the graph twice).

        Returns
        -------
        object
            The engine's preprocessing context, or ``None`` for engines
            without preprocessing.
        """
        from repro.search import get_engine

        engine = get_engine(engine_name)  # validate before hashing work
        if fingerprint is None:
            fingerprint = network_fingerprint(network)
        key = (fingerprint, engine_name)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._m_hits.inc()
                return self._entries[key]
            self._m_misses.inc()
        # Build (or reload) without holding the lock.
        artifact = self._load_spilled(key, network)
        from_disk = artifact is not None
        if artifact is None:
            artifact = engine.prepare(network)
        evicted: tuple[tuple[str, str], object] | None = None
        with self._lock:
            if key in self._entries:  # a concurrent build got there first
                self._entries.move_to_end(key)
                return self._entries[key]
            if from_disk:
                self._m_disk_loads.inc()
            self._entries[key] = artifact
            if len(self._entries) > self._capacity:
                evicted = self._entries.popitem(last=False)
                self._m_evictions.inc()
        if evicted is not None:
            self._spill(*evicted)
        return artifact

    def peek(self, fingerprint: str, engine_name: str) -> object | None:
        """The in-memory artifact for a key, or ``None`` — no side effects.

        Unlike :meth:`get` this never builds, never reloads from disk,
        and never counts a hit or miss; the serving stack uses it to ask
        "is there an overlay I could recustomize?" without perturbing
        the cache statistics.
        """
        with self._lock:
            return self._entries.get((fingerprint, engine_name))

    def put(self, fingerprint: str, engine_name: str, artifact: object) -> None:
        """Install an externally built artifact under ``(fingerprint, engine)``.

        The serving stack's re-weight path builds the new artifact
        itself (an incrementally recustomized overlay) and registers it
        here so the next query finds it instead of paying a full
        rebuild.  Inserting may evict (and spill) the least recently
        used entry, exactly like a miss-driven insert.
        """
        key = (fingerprint, engine_name)
        evicted: tuple[tuple[str, str], object] | None = None
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            if len(self._entries) > self._capacity:
                evicted = self._entries.popitem(last=False)
                self._m_evictions.inc()
        if evicted is not None:
            self._spill(*evicted)

    def invalidate(self, network, engine_name: str) -> bool:
        """Drop the in-memory entry for ``(network, engine_name)``.

        Returns ``True`` when an entry was present.  Spilled files are
        left on disk (they are still correct for that fingerprint).
        """
        key = (network_fingerprint(network), engine_name)
        with self._lock:
            return self._entries.pop(key, None) is not None

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every in-memory artifact keyed by ``fingerprint``.

        The epoch-retirement hook of the live traffic pipeline
        (:mod:`repro.service.pipeline`): once no in-flight batch can
        still be serving a retired epoch, its artifacts — across all
        engines — are released in one call.  Returns the number of
        entries dropped.  Spilled files stay on disk (still correct for
        that fingerprint, and harmless: the fingerprint of a mutated
        network never recurs).
        """
        with self._lock:
            doomed = [k for k in self._entries if k[0] == fingerprint]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        """Drop all in-memory entries and zero the counters."""
        with self._lock:
            self._entries.clear()
            for counter in (
                self._m_hits, self._m_misses,
                self._m_evictions, self._m_disk_loads,
            ):
                counter.reset()

    def snapshot(self) -> CacheSnapshot:
        """Current counters as a (preprocessing-only) :class:`CacheSnapshot`."""
        with self._lock:
            return CacheSnapshot(
                preprocessing_hits=self.hits,
                preprocessing_misses=self.misses,
                preprocessing_evictions=self.evictions,
                preprocessing_disk_loads=self.disk_loads,
            )

    def spill_now(self, fingerprint: str, engine_name: str) -> Path | None:
        """Persist the cached artifact for a key to the spill dir *now*.

        Spill normally happens lazily on LRU eviction; this forces it so
        another process pointed at the same ``spill_dir`` can warm from
        disk instead of rebuilding — the artifact-handoff channel the
        network gateway uses to start shard workers
        (:mod:`repro.service.gateway`).  Returns the spill file's path,
        or ``None`` when there is no spill dir, no in-memory artifact
        for the key, or the artifact's type has no persistent format.
        """
        with self._lock:
            artifact = self._entries.get((fingerprint, engine_name))
        if artifact is None:
            return None
        self._spill((fingerprint, engine_name), artifact)
        path = self._spill_path((fingerprint, engine_name))
        return path if path is not None and path.exists() else None

    # ------------------------------------------------------------------
    # Disk spill (contracted graphs — directly for "ch", via the wrapped
    # graph for "ch-csr" flat hierarchies, see repro.search.ch.persist;
    # partition overlays and CSR snapshots via the page-aligned binary
    # blobs of repro.service.blob, mmap-backed on reload)
    # ------------------------------------------------------------------
    #: engines whose artifacts spill via the overlay blob format; the
    #: one list both the path chooser and the loader consult, so the
    #: two can never disagree on a key's on-disk format.
    _OVERLAY_SPILL_ENGINES = ("overlay", "overlay-csr", "overlay-nested")

    #: engines whose artifacts are plain CSR snapshots, spilled as CSR
    #: blobs and reloaded with mmap-backed arrays (first query faults in
    #: exactly the pages it walks — cold warm-up is O(nodes), not O(m)).
    _CSR_SPILL_ENGINES = ("dijkstra-csr", "bidirectional-csr")

    def _spill_path(self, key: tuple[str, str]) -> Path | None:
        if self._spill_dir is None:
            return None
        fingerprint, engine_name = key
        if engine_name in self._OVERLAY_SPILL_ENGINES:
            suffix = "ovlb"
        elif engine_name in self._CSR_SPILL_ENGINES:
            suffix = "csrb"
        else:
            suffix = "ch"
        return self._spill_dir / f"{fingerprint}-{engine_name}.{suffix}"

    def _spill(self, key: tuple[str, str], artifact: object) -> None:
        from repro.network.csr import CSRGraph
        from repro.search.ch import ContractedGraph
        from repro.search.kernels import CSRHierarchy
        from repro.search.overlay import OverlayGraph

        path = self._spill_path(key)
        if path is None:
            return
        if path.exists():  # an earlier eviction already persisted it
            return
        if key[1] in self._OVERLAY_SPILL_ENGINES:
            if isinstance(artifact, OverlayGraph):
                from repro.exceptions import GraphError
                from repro.service.blob import write_overlay_blob

                self._spill_dir.mkdir(parents=True, exist_ok=True)
                try:
                    write_overlay_blob(artifact, path)
                except GraphError:  # non-int node ids: spill is best-effort
                    path.unlink(missing_ok=True)
            return
        if key[1] in self._CSR_SPILL_ENGINES:
            if isinstance(artifact, CSRGraph):
                from repro.exceptions import GraphError
                from repro.service.blob import write_csr_blob

                self._spill_dir.mkdir(parents=True, exist_ok=True)
                try:
                    write_csr_blob(artifact, path)
                except GraphError:  # non-int node ids: spill is best-effort
                    path.unlink(missing_ok=True)
            return
        if isinstance(artifact, CSRHierarchy):
            # The flat arrays are a cheap derivative; persist the wrapped
            # contracted graph and re-flatten on reload.
            artifact = artifact.contracted
        if not isinstance(artifact, ContractedGraph):
            return
        from repro.search.ch.persist import write_contracted

        self._spill_dir.mkdir(parents=True, exist_ok=True)
        write_contracted(artifact, path)

    def _load_spilled(self, key: tuple[str, str], network) -> object | None:
        path = self._spill_path(key)
        if path is None or not path.exists():
            return None
        if key[1] in self._OVERLAY_SPILL_ENGINES:
            from repro.service.blob import read_overlay_blob

            return read_overlay_blob(path, network)
        if key[1] in self._CSR_SPILL_ENGINES:
            from repro.service.blob import read_csr_blob

            return read_csr_blob(path)
        from repro.search.ch.persist import read_contracted

        graph = read_contracted(path)
        if key[1] == "ch-csr":
            from repro.search.kernels import CSRHierarchy

            return CSRHierarchy(graph)
        return graph


class ResultCache:
    """Thread-safe LRU of whole many-to-many result tables.

    Keys are ``(network fingerprint, sources, destinations, engine)``
    with endpoint tuples in wire order — the deterministic order
    :class:`~repro.core.query.ObfuscatedPathQuery` guarantees — so a
    repeated obfuscated query is a hit and a permuted one is not (the
    permuted table would be a different server response).  The
    fingerprint component makes sharing one cache across stacks serving
    different networks safe, and invalidates every table when a network
    is mutated in place.

    Parameters
    ----------
    capacity:
        Maximum cached tables; 0 disables caching (every lookup misses).

    Examples
    --------
    >>> cache = ResultCache(capacity=2)
    >>> cache.get("fp", (1, 2), (3,), "dijkstra") is None
    True
    >>> cache.misses
    1
    """

    def __init__(
        self, capacity: int = 256, metrics: MetricsRegistry | None = None
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self._capacity = capacity
        self._entries: OrderedDict[
            tuple[str, tuple[NodeId, ...], tuple[NodeId, ...], str], MSMDResult
        ] = OrderedDict()
        self._lock = threading.RLock()
        #: registry holding the live hit/miss counters
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_hits = self.metrics.counter(
            "repro_result_cache_hits_total",
            desc="result tables served without fresh search work",
        )
        self._m_misses = self.metrics.counter(
            "repro_result_cache_misses_total",
            desc="result lookups that required evaluation",
        )
        self._m_evictions = self.metrics.counter(
            "repro_result_cache_evictions_total",
            desc="result tables evicted by the LRU",
        )

    @property
    def hits(self) -> int:
        """Lookups served from cache (registry-backed)."""
        return self._m_hits.value

    @property
    def misses(self) -> int:
        """Lookups that required evaluation (registry-backed)."""
        return self._m_misses.value

    @property
    def evictions(self) -> int:
        """LRU evictions so far (registry-backed)."""
        return self._m_evictions.value

    def __len__(self) -> int:
        """Number of cached result tables."""
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        """Maximum number of cached tables."""
        return self._capacity

    @staticmethod
    def _key(
        fingerprint: str,
        sources: Sequence[NodeId],
        destinations: Sequence[NodeId],
        engine: str,
    ) -> tuple[str, tuple[NodeId, ...], tuple[NodeId, ...], str]:
        return (fingerprint, tuple(sources), tuple(destinations), engine)

    def get(
        self,
        fingerprint: str,
        sources: Sequence[NodeId],
        destinations: Sequence[NodeId],
        engine: str,
    ) -> MSMDResult | None:
        """The cached table for ``Q(S, T)`` on that network, or ``None``.

        Counts a hit/miss and refreshes LRU recency on hit.
        """
        key = self._key(fingerprint, sources, destinations, engine)
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self._m_hits.inc()
                return result
            self._m_misses.inc()
            return None

    def put(
        self,
        fingerprint: str,
        sources: Sequence[NodeId],
        destinations: Sequence[NodeId],
        engine: str,
        result: MSMDResult,
    ) -> None:
        """Insert a table (evicting the LRU entry when full)."""
        if self._capacity == 0:
            return
        key = self._key(fingerprint, sources, destinations, engine)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._m_evictions.inc()

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every cached table keyed by ``fingerprint``.

        Companion to
        :meth:`PreprocessingCache.invalidate_fingerprint`: when the
        pipeline retires an epoch it also releases that epoch's result
        tables, which no future lookup can hit (content fingerprints of
        mutated networks never recur).  Returns the number of tables
        dropped; no hit/miss/eviction counter moves.
        """
        with self._lock:
            doomed = [k for k in self._entries if k[0] == fingerprint]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def count_shared_hit(self) -> None:
        """Count a lookup served by work shared within the same batch.

        The serving stack deduplicates identical queries inside one
        batch; the duplicates never probe the table (it is not populated
        yet) but they *are* served without fresh work, so they count as
        hits to keep the hit rate consistent with per-response
        ``from_cache`` flags.
        """
        with self._lock:
            self._m_hits.inc()

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._entries.clear()
            for counter in (self._m_hits, self._m_misses, self._m_evictions):
                counter.reset()

    def snapshot(self) -> CacheSnapshot:
        """Current counters as a (result-only) :class:`CacheSnapshot`."""
        with self._lock:
            return CacheSnapshot(
                result_hits=self.hits,
                result_misses=self.misses,
                result_evictions=self.evictions,
            )
