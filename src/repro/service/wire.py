"""Versioned JSON wire schema shared by gateway, load generator and CLI.

Every HTTP body the gateway accepts or emits is one of the typed
dataclasses below, serialized canonically (sorted keys, no whitespace)
so two encodings of the same answer are *byte-identical* — the property
the gateway's conformance gate checks against in-process
:meth:`~repro.service.serving.ServingStack.answer_batch` answers.

Schema rules:

* every document carries ``"schema": WIRE_SCHEMA_VERSION``;
* requests name endpoints (``sources``/``destinations``) — that is the
  client talking to the server, exactly what the OPAQUE protocol
  obfuscates before it leaves the client;
* error bodies carry a machine-readable ``code`` from
  :data:`ERROR_CODES` and a *generic* human message — exception text is
  never echoed, because :class:`~repro.exceptions.NoPathError` and
  friends interpolate raw node ids into their messages and the HTTP
  boundary must uphold the obs-layer redaction invariant
  (:data:`~repro.obs.trace.FORBIDDEN_ATTR_KEYS`).

Decoding is strict: unknown fields, wrong types and malformed endpoint
lists raise :class:`WireError` with the matching error code, which the
gateway maps straight onto a 4xx response.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.query import ObfuscatedPathQuery
from repro.core.server import ServerResponse

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "ERROR_CODES",
    "WireError",
    "RouteRequest",
    "BatchRequest",
    "RouteResponse",
    "BatchResponse",
    "ErrorResponse",
    "canonical_json",
]

#: version stamp carried by every wire document
WIRE_SCHEMA_VERSION = 1

#: machine-readable error codes an :class:`ErrorResponse` may carry,
#: mapped to the generic message the HTTP boundary is allowed to show.
ERROR_CODES = {
    "invalid_json": "request body is not valid JSON",
    "invalid_request": "request fields failed validation",
    "unknown_route": "no such endpoint",
    "bad_method": "method not allowed on this endpoint",
    "no_path": "no path exists for at least one requested pair",
    "overloaded": "server is over capacity, retry later",
    "internal": "internal server error",
}


def canonical_json(doc: Any) -> str:
    """Serialize ``doc`` canonically: sorted keys, no whitespace.

    The single encoder used for every wire body, so equal documents are
    equal byte strings.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class WireError(ValueError):
    """A wire document failed schema validation.

    Attributes
    ----------
    code:
        Machine-readable error code from :data:`ERROR_CODES` (always
        ``invalid_request`` or ``invalid_json``).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _require_schema(doc: dict) -> None:
    version = doc.get("schema", WIRE_SCHEMA_VERSION)
    if version != WIRE_SCHEMA_VERSION:
        raise WireError(
            "invalid_request",
            f"unsupported wire schema version {version!r}",
        )


def _node_tuple(value: Any, name: str) -> tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise WireError(
            "invalid_request", f"{name} must be a non-empty array"
        )
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise WireError(
                "invalid_request", f"{name} entries must be integers"
            )
        out.append(item)
    return tuple(out)


def _parse_doc(text: str | bytes) -> dict:
    try:
        doc = json.loads(text)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError("invalid_json", "body is not valid JSON") from exc
    if not isinstance(doc, dict):
        raise WireError("invalid_request", "body must be a JSON object")
    return doc


@dataclass(frozen=True, slots=True)
class RouteRequest:
    """``POST /v1/route`` body: one obfuscated query ``Q(S, T)``.

    Endpoint order is preserved — it is the query's wire order, which
    decides the order of the response's path table.
    """

    sources: tuple[int, ...]
    destinations: tuple[int, ...]

    def to_query(self) -> ObfuscatedPathQuery:
        """The core query object (validates the Definition 1 invariants).

        Raises
        ------
        WireError
            With code ``invalid_request`` when S/T break the query
            invariants (empty or duplicate entries); the core
            exception's node-id-bearing message is *not* propagated.
        """
        from repro.exceptions import QueryError

        try:
            return ObfuscatedPathQuery(self.sources, self.destinations)
        except QueryError as exc:
            raise WireError(
                "invalid_request", "sources/destinations failed validation"
            ) from exc

    @classmethod
    def from_query(cls, query: ObfuscatedPathQuery) -> "RouteRequest":
        """Wire form of an existing obfuscated query."""
        return cls(tuple(query.sources), tuple(query.destinations))

    def to_dict(self) -> dict:
        """JSON-ready dict with the schema version stamp."""
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "sources": list(self.sources),
            "destinations": list(self.destinations),
        }

    def to_json(self) -> str:
        """Canonical JSON encoding."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, doc: dict) -> "RouteRequest":
        """Strictly decode a parsed JSON object.

        Raises
        ------
        WireError
            On unknown fields, missing fields or malformed endpoints.
        """
        _require_schema(doc)
        unknown = set(doc) - {"schema", "sources", "destinations"}
        if unknown:
            raise WireError(
                "invalid_request",
                f"unknown fields: {sorted(unknown)}",
            )
        return cls(
            _node_tuple(doc.get("sources"), "sources"),
            _node_tuple(doc.get("destinations"), "destinations"),
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> "RouteRequest":
        """Decode a JSON body (raises :class:`WireError` when invalid)."""
        return cls.from_dict(_parse_doc(text))


@dataclass(frozen=True, slots=True)
class BatchRequest:
    """``POST /v1/batch`` body: several obfuscated queries, in order."""

    queries: tuple[RouteRequest, ...]

    def to_queries(self) -> list[ObfuscatedPathQuery]:
        """Core query objects in submission order."""
        return [request.to_query() for request in self.queries]

    def to_dict(self) -> dict:
        """JSON-ready dict with the schema version stamp."""
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "queries": [
                {
                    "sources": list(request.sources),
                    "destinations": list(request.destinations),
                }
                for request in self.queries
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON encoding."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, doc: dict) -> "BatchRequest":
        """Strictly decode a parsed JSON object."""
        _require_schema(doc)
        unknown = set(doc) - {"schema", "queries"}
        if unknown:
            raise WireError(
                "invalid_request", f"unknown fields: {sorted(unknown)}"
            )
        entries = doc.get("queries")
        if not isinstance(entries, list) or not entries:
            raise WireError(
                "invalid_request", "queries must be a non-empty array"
            )
        requests = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise WireError(
                    "invalid_request", "each query must be an object"
                )
            requests.append(RouteRequest.from_dict({
                "schema": WIRE_SCHEMA_VERSION, **entry,
            }))
        return cls(tuple(requests))

    @classmethod
    def from_json(cls, text: str | bytes) -> "BatchRequest":
        """Decode a JSON body (raises :class:`WireError` when invalid)."""
        return cls.from_dict(_parse_doc(text))


@dataclass(frozen=True, slots=True)
class RouteResponse:
    """One answered query: the ``|S| x |T|`` path table, in wire order.

    ``paths`` entries are ``(source, destination, nodes, cost)`` tuples
    ordered by the query's ``S x T`` wire order, so the canonical
    encoding of the same answer is byte-identical no matter which
    process produced it.  ``from_cache``/``coalesced`` mirror the
    :class:`~repro.core.server.ServerResponse` flags; they are serving
    metadata, *not* part of the byte-identity contract
    (:meth:`payload_dict` excludes them).
    """

    paths: tuple[tuple[int, int, tuple[int, ...], float], ...]
    from_cache: bool = False
    coalesced: bool = False

    @classmethod
    def from_server(cls, response: ServerResponse) -> "RouteResponse":
        """Wire form of a server answer, pairs in the query's wire order."""
        query = response.query
        paths = []
        for source in query.sources:
            for destination in query.destinations:
                result = response.candidates.path_for(source, destination)
                paths.append(
                    (source, destination, tuple(result.nodes),
                     float(result.distance))
                )
        return cls(
            tuple(paths),
            from_cache=response.from_cache,
            coalesced=response.coalesced,
        )

    def payload_dict(self) -> dict:
        """The path/cost payload alone — the byte-identity surface."""
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "paths": [
                {
                    "source": source,
                    "destination": destination,
                    "nodes": list(nodes),
                    "cost": cost,
                }
                for source, destination, nodes, cost in self.paths
            ],
        }

    def payload_json(self) -> str:
        """Canonical encoding of :meth:`payload_dict`."""
        return canonical_json(self.payload_dict())

    def to_dict(self) -> dict:
        """Full JSON-ready dict: payload plus serving metadata."""
        doc = self.payload_dict()
        doc["from_cache"] = self.from_cache
        doc["coalesced"] = self.coalesced
        return doc

    def to_json(self) -> str:
        """Canonical JSON encoding."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, doc: dict) -> "RouteResponse":
        """Decode a parsed JSON object (used by the load generator)."""
        _require_schema(doc)
        entries = doc.get("paths")
        if not isinstance(entries, list):
            raise WireError("invalid_request", "paths must be an array")
        paths = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise WireError(
                    "invalid_request", "each path must be an object"
                )
            try:
                paths.append((
                    int(entry["source"]),
                    int(entry["destination"]),
                    tuple(int(n) for n in entry["nodes"]),
                    float(entry["cost"]),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise WireError(
                    "invalid_request", "malformed path entry"
                ) from exc
        return cls(
            tuple(paths),
            from_cache=bool(doc.get("from_cache", False)),
            coalesced=bool(doc.get("coalesced", False)),
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> "RouteResponse":
        """Decode a JSON body (raises :class:`WireError` when invalid)."""
        return cls.from_dict(_parse_doc(text))


@dataclass(frozen=True, slots=True)
class BatchResponse:
    """``POST /v1/batch`` answer: one :class:`RouteResponse` per query."""

    results: tuple[RouteResponse, ...]

    @classmethod
    def from_server(
        cls, responses: list[ServerResponse]
    ) -> "BatchResponse":
        """Wire form of a list of server answers, in submission order."""
        return cls(tuple(RouteResponse.from_server(r) for r in responses))

    def to_dict(self) -> dict:
        """JSON-ready dict with the schema version stamp."""
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "results": [
                {k: v for k, v in result.to_dict().items() if k != "schema"}
                for result in self.results
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON encoding."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, doc: dict) -> "BatchResponse":
        """Decode a parsed JSON object (used by the load generator)."""
        _require_schema(doc)
        entries = doc.get("results")
        if not isinstance(entries, list):
            raise WireError("invalid_request", "results must be an array")
        return cls(tuple(
            RouteResponse.from_dict({"schema": WIRE_SCHEMA_VERSION, **entry})
            for entry in entries
        ))

    @classmethod
    def from_json(cls, text: str | bytes) -> "BatchResponse":
        """Decode a JSON body (raises :class:`WireError` when invalid)."""
        return cls.from_dict(_parse_doc(text))


@dataclass(frozen=True, slots=True)
class ErrorResponse:
    """Error body: machine-readable ``code`` plus a *generic* message.

    The message is always looked up from :data:`ERROR_CODES` — free-form
    exception text never crosses the HTTP boundary, because core error
    messages interpolate raw node ids.
    """

    code: str
    retry_after_s: float | None = None
    message: str = field(init=False, default="")

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown error code {self.code!r}")
        object.__setattr__(self, "message", ERROR_CODES[self.code])

    def to_dict(self) -> dict:
        """JSON-ready dict with the schema version stamp."""
        doc = {
            "schema": WIRE_SCHEMA_VERSION,
            "error": self.code,
            "message": self.message,
        }
        if self.retry_after_s is not None:
            doc["retry_after_s"] = self.retry_after_s
        return doc

    def to_json(self) -> str:
        """Canonical JSON encoding."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, doc: dict) -> "ErrorResponse":
        """Decode a parsed JSON object (used by the load generator)."""
        _require_schema(doc)
        code = doc.get("error")
        if code not in ERROR_CODES:
            raise WireError("invalid_request", "unknown error code")
        retry = doc.get("retry_after_s")
        return cls(code, retry_after_s=retry)

    @classmethod
    def from_json(cls, text: str | bytes) -> "ErrorResponse":
        """Decode a JSON body (raises :class:`WireError` when invalid)."""
        return cls.from_dict(_parse_doc(text))
