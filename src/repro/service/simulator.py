"""Discrete-time simulation of the obfuscator as an online service.

Requests arrive at timestamps (e.g. Poisson arrivals); the obfuscator
accumulates them into batching windows of fixed length ``window``.  When a
window closes, everything in hand is pushed through an
:class:`~repro.core.system.OpaqueSystem` batch (shared or independent) and
each member's response latency is ``window_close - arrival`` plus a
service time proportional to the server work the batch needed.

This is the latency/privacy/cost trade-off behind Section IV's design:
longer windows gather more co-located real endpoints (stronger shared
anonymity, more sharing) but keep early arrivals waiting.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.query import ClientRequest
from repro.core.system import OpaqueSystem
from repro.exceptions import ExperimentError
from repro.search.result import PathResult

__all__ = [
    "TimedRequest",
    "ServiceReport",
    "BatchingObfuscationService",
    "poisson_arrivals",
]


@dataclass(frozen=True, slots=True)
class TimedRequest:
    """A client request stamped with its arrival time (seconds)."""

    arrival_time: float
    request: ClientRequest

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ExperimentError("arrival_time must be >= 0")


@dataclass(slots=True)
class ServiceReport:
    """Aggregate outcome of one simulated service run.

    Attributes
    ----------
    latencies_by_user:
        Response latency per user (window wait + service time).
    breach_by_user:
        Definition 2 breach per user, from the underlying batch reports.
    windows_processed:
        Number of non-empty batching windows.
    obfuscated_queries:
        Total ``Q(S, T)`` sent to the server.
    server_settled_nodes:
        Total server search work (cache hits contribute nothing).
    cached_queries:
        Obfuscated queries answered from the serving stack's result
        cache (0 when the system runs without one).
    coalesced_queries:
        Obfuscated queries answered by shared union kernel passes when
        the serving stack runs a
        :class:`~repro.service.serving.QueryCoalescer` (0 otherwise).
    serving_caches:
        The serving stack's cumulative
        :class:`~repro.service.cache.CacheSnapshot` after the run, or
        ``None`` when the system runs without one.
    """

    latencies_by_user: dict[str, float] = field(default_factory=dict)
    breach_by_user: dict[str, float] = field(default_factory=dict)
    windows_processed: int = 0
    obfuscated_queries: int = 0
    server_settled_nodes: int = 0
    cached_queries: int = 0
    coalesced_queries: int = 0
    serving_caches: object | None = None

    def latency_percentile(self, q: float) -> float:
        """The ``q``-quantile of response latency (0 when empty)."""
        from repro.service.stats import percentile

        return percentile(sorted(self.latencies_by_user.values()), q)

    @property
    def mean_latency(self) -> float:
        """Average response latency across users (0 when empty)."""
        if not self.latencies_by_user:
            return 0.0
        return sum(self.latencies_by_user.values()) / len(self.latencies_by_user)

    @property
    def p50_latency(self) -> float:
        """Median response latency (0 when empty)."""
        return self.latency_percentile(0.50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile response latency (0 when empty)."""
        return self.latency_percentile(0.95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile response latency (0 when empty)."""
        return self.latency_percentile(0.99)

    @property
    def mean_breach(self) -> float:
        """Average per-user breach probability (1 when empty)."""
        if not self.breach_by_user:
            return 1.0
        return sum(self.breach_by_user.values()) / len(self.breach_by_user)

    def to_dict(self) -> dict:
        """Stable-key report shape (see ``docs/API.md``).

        Aggregates only — the per-user latency/breach maps stay in
        memory (user names are session identifiers, not report
        material).
        """
        return {
            "schema": 1,
            "kind": "service_report",
            "users": len(self.latencies_by_user),
            "windows_processed": self.windows_processed,
            "obfuscated_queries": self.obfuscated_queries,
            "server_settled_nodes": self.server_settled_nodes,
            "cached_queries": self.cached_queries,
            "coalesced_queries": self.coalesced_queries,
            "mean_latency_s": self.mean_latency,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "p99_latency_s": self.p99_latency,
            "mean_breach": self.mean_breach,
            "cache": (
                self.serving_caches.to_dict()
                if self.serving_caches is not None
                else None
            ),
        }


class BatchingObfuscationService:
    """Windowed batching in front of an :class:`OpaqueSystem`.

    Parameters
    ----------
    system:
        The deployment handling each window's batch (its ``mode`` decides
        independent vs. shared obfuscation).  Build it with a
        :class:`~repro.service.serving.ServingStack` (``serving=``) to
        serve windows through the preprocessing/result caches and the
        concurrent dispatcher; the report then carries cache counters.
    window:
        Batching window length in seconds (> 0).  Window boundaries sit at
        multiples of ``window``; a request arriving at time ``a`` is
        answered at the first boundary strictly after ``a``.
    service_time_per_settled_node:
        Seconds of processing latency charged per settled node of the
        window's server work, added to every member's latency (models the
        server actually computing).  0 disables it.
    """

    def __init__(
        self,
        system: OpaqueSystem,
        window: float = 1.0,
        service_time_per_settled_node: float = 0.0,
    ) -> None:
        if window <= 0:
            raise ExperimentError("window must be positive")
        if service_time_per_settled_node < 0:
            raise ExperimentError("service time rate must be >= 0")
        self.system = system
        self._window = window
        self._service_rate = service_time_per_settled_node

    @property
    def window(self) -> float:
        """Batching window length in seconds."""
        return self._window

    def run(
        self, arrivals: Sequence[TimedRequest]
    ) -> tuple[dict[str, PathResult], ServiceReport]:
        """Simulate the whole arrival stream.

        Returns
        -------
        (results, report)
            ``results`` maps each user to their path; ``report`` carries
            latency/privacy/cost aggregates.

        Raises
        ------
        ExperimentError
            On duplicate users (results are keyed by user) — the same
            constraint :meth:`OpaqueSystem.submit` enforces per batch,
            lifted here to the whole stream.
        """
        users = [t.request.user for t in arrivals]
        if len(set(users)) != len(users):
            raise ExperimentError("duplicate user ids in arrival stream")
        report = ServiceReport()
        results: dict[str, PathResult] = {}
        ordered = sorted(arrivals, key=lambda t: t.arrival_time)
        index = 0
        while index < len(ordered):
            # The window containing this arrival closes at the next
            # boundary strictly after it.
            first = ordered[index]
            close = math.floor(first.arrival_time / self._window + 1.0) * self._window
            batch: list[TimedRequest] = []
            while index < len(ordered) and ordered[index].arrival_time < close:
                batch.append(ordered[index])
                index += 1
            batch_results = self.system.submit([t.request for t in batch])
            system_report = self.system.last_report
            assert system_report is not None
            service_time = (
                system_report.server_stats.settled_nodes * self._service_rate
            )
            for timed in batch:
                user = timed.request.user
                results[user] = batch_results[user]
                report.latencies_by_user[user] = (
                    close - timed.arrival_time + service_time
                )
                report.breach_by_user[user] = system_report.breach_by_user[user]
            report.windows_processed += 1
            report.obfuscated_queries += len(system_report.records)
            report.server_settled_nodes += system_report.server_stats.settled_nodes
            report.cached_queries += system_report.cached_queries
            report.coalesced_queries += system_report.coalesced_queries
        report.serving_caches = (
            self.system.serving.snapshot()
            if getattr(self.system, "serving", None) is not None
            else None
        )
        return results, report


def poisson_arrivals(
    requests: Sequence[ClientRequest],
    rate: float,
    seed: int = 0,
) -> list[TimedRequest]:
    """Stamp ``requests`` with Poisson arrival times (``rate`` per second).

    Inter-arrival gaps are exponential with mean ``1/rate``; order is
    preserved.
    """
    if rate <= 0:
        raise ExperimentError("arrival rate must be positive")
    rng = random.Random(seed)
    now = 0.0
    arrivals: list[TimedRequest] = []
    for request in requests:
        now += rng.expovariate(rate)
        arrivals.append(TimedRequest(arrival_time=now, request=request))
    return arrivals
