"""Page-aligned binary artifact blobs with mmap-backed loading.

The preprocessing spill channel (:class:`~repro.service.cache.PreprocessingCache`)
originally persisted partition overlays through the text format of
:mod:`repro.search.overlay` — correct, but a cold shard worker then pays
float/int *parsing* for every clique path before it can serve.  This
module replaces the spill wire format with a binary container purpose
built for warm-starts:

* :func:`write_blob` / :func:`read_blob` — a generic container: an
  8-byte magic, a JSON header describing named typed sections, then the
  section payloads with every section start aligned to
  :data:`PAGE_SIZE`.  Loading memory-maps the file once and hands out
  zero-copy ``memoryview`` casts, so bytes move from the page cache
  straight into the consumer and untouched sections are never faulted
  in.  Pure stdlib (:mod:`mmap`, :mod:`array`) — numpy is not required,
  and ``numpy.frombuffer`` accepts the views unchanged when callers
  want ndarray math on top.
* :func:`write_csr_blob` / :func:`read_csr_blob` — a
  :class:`~repro.network.csr.CSRGraph` as seven flat sections.  The
  loaded snapshot keeps its ``offsets``/``targets``/``weights`` *backed
  by the mapping*: no copy is made at load time, the kernels' lazy
  ``kernel_view()`` materialization works unchanged, and the first
  query faults in exactly the pages it walks.
* :func:`write_overlay_blob` / :func:`read_overlay_blob` — an
  :class:`~repro.search.overlay.OverlayGraph` (or its nested subclass)
  with partition cells and clique paths flattened into CSR-shaped
  arrays.  Loading slices path tuples out of the mapping without any
  text parsing; a ``nested`` header flag round-trips
  :class:`~repro.search.overlay.NestedOverlayGraph`, whose level-1
  tables load from the blob while the (cheap) supercell level is
  re-derived deterministically.

Like the text formats, the codecs require integer node ids and raise
:class:`~repro.exceptions.GraphError` otherwise — the cache treats
spill as best-effort and simply rebuilds such artifacts.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from array import array
from pathlib import Path

from repro.exceptions import GraphError

__all__ = [
    "BLOB_MAGIC",
    "PAGE_SIZE",
    "Blob",
    "write_blob",
    "read_blob",
    "write_csr_blob",
    "read_csr_blob",
    "write_overlay_blob",
    "read_overlay_blob",
]

#: first eight bytes of every blob file
BLOB_MAGIC = b"RPRBLOB1"

#: section payloads start on multiples of this (the OS page size, so a
#: section maps to whole pages and faults independently of its siblings)
PAGE_SIZE = mmap.PAGESIZE

#: bytes per item of the supported section typecodes (8-byte ints and
#: C doubles — the two types every artifact array in this package uses)
_ITEM_SIZE = {"q": 8, "d": 8}


def _align(offset: int) -> int:
    """``offset`` rounded up to the next page boundary."""
    return (offset + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


class Blob:
    """One opened blob: parsed header plus zero-copy section views.

    Attributes
    ----------
    path:
        The file the blob was read from.
    meta:
        The writer's metadata dict, verbatim.
    sections:
        ``{name: memoryview}`` typed views (``'q'`` int64 / ``'d'``
        float64) into the shared memory mapping — zero-copy, read-only.

    The mapping stays alive as long as any view does; call
    :meth:`close` only once no view has escaped (it releases the views
    this object still holds, then closes the mapping).
    """

    __slots__ = ("path", "meta", "sections", "_mm")

    def __init__(
        self, path: Path, meta: dict, sections: dict, mm: mmap.mmap
    ) -> None:
        self.path = path
        self.meta = meta
        self.sections = sections
        self._mm = mm

    def close(self) -> None:
        """Release the held views and close the memory mapping.

        Raises
        ------
        BufferError
            When a view handed out by :attr:`sections` is still alive
            elsewhere (the mapping cannot be unmapped under it).
        """
        for view in self.sections.values():
            view.release()
        self.sections = {}
        self._mm.close()

    def __repr__(self) -> str:
        names = ", ".join(self.sections)
        return f"Blob({self.path.name!r}, sections=[{names}])"


def write_blob(
    path: str | os.PathLike[str],
    meta: dict,
    sections: list[tuple[str, str, array]],
) -> None:
    """Write named typed arrays as one page-aligned blob file.

    Parameters
    ----------
    path:
        Destination file (overwritten atomically via a same-directory
        temp file, so a concurrent reader never sees a torn blob).
    meta:
        JSON-serializable metadata stored in the header.
    sections:
        ``(name, typecode, values)`` triples; ``typecode`` is ``'q'``
        (int64) or ``'d'`` (float64) and ``values`` is an
        :class:`array.array` of that typecode (or any iterable, which
        is converted).  Section payloads are laid out in order, each
        starting on a page boundary.

    Raises
    ------
    GraphError
        For an unsupported typecode or duplicate section name.
    """
    table = []
    payloads = []
    rel = 0
    seen: set[str] = set()
    for name, fmt, values in sections:
        if fmt not in _ITEM_SIZE:
            raise GraphError(f"unsupported blob section typecode {fmt!r}")
        if name in seen:
            raise GraphError(f"duplicate blob section {name!r}")
        seen.add(name)
        arr = values if isinstance(values, array) else array(fmt, values)
        if arr.typecode != fmt or arr.itemsize != _ITEM_SIZE[fmt]:
            raise GraphError(
                f"section {name!r} array does not match typecode {fmt!r}"
            )
        rel = _align(rel)
        table.append(
            {"name": name, "fmt": fmt, "count": len(arr), "offset": rel}
        )
        payloads.append((rel, arr))
        rel += len(arr) * _ITEM_SIZE[fmt]
    header = json.dumps(
        {"meta": meta, "sections": table}, separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    data_start = _align(len(BLOB_MAGIC) + 8 + len(header))
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(BLOB_MAGIC)
        fh.write(struct.pack("<Q", len(header)))
        fh.write(header)
        for rel_offset, arr in payloads:
            fh.seek(data_start + rel_offset)
            fh.write(memoryview(arr))
        # Extend the file over trailing zero-length sections (a seek
        # past EOF with nothing written does not grow the file), so
        # every declared section offset is mappable.
        fh.truncate(data_start + rel)
    os.replace(tmp, path)


def read_blob(path: str | os.PathLike[str]) -> Blob:
    """Memory-map a blob written by :func:`write_blob`.

    Returns a :class:`Blob` whose section views alias the mapping —
    nothing is copied, and pages fault in lazily as sections are read.

    Raises
    ------
    GraphError
        For a missing magic, a malformed header, or a section table
        that does not fit the file.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        try:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length file cannot be mapped
            raise GraphError(f"not a blob file: {path}") from exc
    sections: dict[str, memoryview] = {}
    try:
        prefix = len(BLOB_MAGIC)
        if mm[:prefix] != BLOB_MAGIC:
            raise GraphError(f"not a blob file: {path}")
        (hlen,) = struct.unpack("<Q", mm[prefix:prefix + 8])
        try:
            header = json.loads(mm[prefix + 8:prefix + 8 + hlen])
            meta = header["meta"]
            table = header["sections"]
        except (ValueError, KeyError, TypeError) as exc:
            raise GraphError(f"malformed blob header in {path}") from exc
        data_start = _align(prefix + 8 + hlen)
        for entry in table:
            fmt = entry["fmt"]
            if fmt not in _ITEM_SIZE:
                raise GraphError(f"malformed blob section in {path}")
            nbytes = entry["count"] * _ITEM_SIZE[fmt]
            start = data_start + entry["offset"]
            if start + nbytes > len(mm):
                raise GraphError(f"malformed blob section in {path}")
            sections[entry["name"]] = memoryview(mm)[
                start:start + nbytes
            ].cast(fmt)
    except GraphError:
        for view in sections.values():
            view.release()
        mm.close()
        raise
    return Blob(path, meta, sections, mm)


# ----------------------------------------------------------------------
# CSR snapshots
# ----------------------------------------------------------------------
def write_csr_blob(csr, path: str | os.PathLike[str]) -> None:
    """Persist a :class:`~repro.network.csr.CSRGraph` as a blob.

    Raises
    ------
    GraphError
        For non-integer node ids (same restriction as every persistent
        format in this package).
    """
    for node in csr.node_ids:
        if type(node) is not int:
            raise GraphError(
                f"CSR blob needs integer node ids, got {node!r}"
            )
    meta = {"kind": "csr", "directed": bool(csr.directed)}
    sections = [
        ("node_ids", "q", array("q", csr.node_ids)),
        ("offsets", "q", csr.offsets),
        ("targets", "q", csr.targets),
        ("weights", "d", csr.weights),
        ("xs", "d", csr.xs),
        ("ys", "d", csr.ys),
    ]
    if csr.directed:
        sections += [
            ("roffsets", "q", csr.roffsets),
            ("rtargets", "q", csr.rtargets),
            ("rweights", "d", csr.rweights),
        ]
    write_blob(path, meta, sections)


def read_csr_blob(path: str | os.PathLike[str]):
    """Load a :class:`~repro.network.csr.CSRGraph` from a blob, mmap-backed.

    The returned snapshot's flat arrays are read-only views into the
    mapping — loading is O(nodes) for the id index only, and arc pages
    fault in on first touch by a query.

    Raises
    ------
    GraphError
        For a malformed blob or one of a different kind.
    """
    from repro.network.csr import CSRGraph

    blob = read_blob(path)
    try:
        if blob.meta.get("kind") != "csr":
            raise GraphError(f"not a CSR blob: {path}")
        s = blob.sections
        node_ids = tuple(s["node_ids"].tolist())
        directed = bool(blob.meta.get("directed"))
        return CSRGraph(
            node_ids=node_ids,
            index_of={node: i for i, node in enumerate(node_ids)},
            offsets=s["offsets"],
            targets=s["targets"],
            weights=s["weights"],
            xs=s["xs"],
            ys=s["ys"],
            directed=directed,
            roffsets=s["roffsets"] if directed else None,
            rtargets=s["rtargets"] if directed else None,
            rweights=s["rweights"] if directed else None,
        )
    except KeyError as exc:
        blob.close()
        raise GraphError(f"malformed CSR blob {path}") from exc
    except GraphError:
        blob.close()
        raise


# ----------------------------------------------------------------------
# Partition overlays (flat and nested)
# ----------------------------------------------------------------------
def write_overlay_blob(overlay, path: str | os.PathLike[str]) -> None:
    """Persist an overlay (flat or nested) as a blob.

    Carries exactly what :func:`repro.search.overlay.dumps_overlay`
    carries — partition cells plus every customized clique path, in the
    same deterministic order, so two overlays with identical level-1
    tables write byte-identical blobs.  A nested overlay additionally
    records its ``super_capacity``; the supercell level itself is
    re-derived on load (it is weight-independent in structure and cheap
    next to the clique searches the blob saves).

    Raises
    ------
    GraphError
        For non-integer node ids.
    """
    from repro.search.overlay import NestedOverlayGraph

    partition = overlay.partition
    cell_offsets = array("q", [0])
    cell_nodes = array("q")
    for members in partition.cells:
        for node in members:
            if type(node) is not int:
                raise GraphError(
                    f"overlay blob needs integer node ids, got {node!r}"
                )
            cell_nodes.append(node)
        cell_offsets.append(len(cell_nodes))
    clq_cell = array("q")
    clq_dist = array("d")
    clq_offsets = array("q", [0])
    clq_nodes = array("q")
    for cell, clique in enumerate(overlay.cliques):
        for b in partition.boundary[cell]:
            for p in clique[b].values():
                clq_cell.append(cell)
                clq_dist.append(p.distance)
                clq_nodes.extend(p.nodes)
                clq_offsets.append(len(clq_nodes))
    meta = {
        "kind": "overlay",
        "kernel": overlay.kernel,
        "capacity": partition.cell_capacity,
        "nested": isinstance(overlay, NestedOverlayGraph),
        "super_capacity": (
            overlay.super_capacity
            if isinstance(overlay, NestedOverlayGraph)
            else None
        ),
    }
    write_blob(path, meta, [
        ("cell_offsets", "q", cell_offsets),
        ("cell_nodes", "q", cell_nodes),
        ("clq_cell", "q", clq_cell),
        ("clq_dist", "d", clq_dist),
        ("clq_offsets", "q", clq_offsets),
        ("clq_nodes", "q", clq_nodes),
    ])


def read_overlay_blob(path: str | os.PathLike[str], network):
    """Rebuild an overlay from a blob — no text parsing on the warm path.

    ``network`` must have the same content the overlay was customized
    for (the cache guarantees this by keying spill files on the network
    fingerprint).  Returns an
    :class:`~repro.search.overlay.OverlayGraph`, or a
    :class:`~repro.search.overlay.NestedOverlayGraph` when the blob's
    ``nested`` flag is set.

    Raises
    ------
    GraphError
        For a malformed blob, an unknown kernel, or a partition that
        does not match ``network``.
    """
    from repro.network.io import parse_partition_cells
    from repro.search.overlay import (
        _KERNELS,
        NestedOverlayGraph,
        OverlayGraph,
        PathResult,
        SearchStats,
    )

    blob = read_blob(path)
    try:
        meta = blob.meta
        if meta.get("kind") != "overlay":
            raise GraphError(f"not an overlay blob: {path}")
        kernel = meta.get("kernel")
        if kernel not in _KERNELS:
            raise GraphError(f"unknown overlay kernel {kernel!r}")
        capacity = int(meta["capacity"])
        s = blob.sections
        cell_offsets = s["cell_offsets"].tolist()
        cell_nodes = s["cell_nodes"].tolist()
        cells = [
            (i, cell_nodes[cell_offsets[i]:cell_offsets[i + 1]])
            for i in range(len(cell_offsets) - 1)
        ]
        partition = parse_partition_cells(cells, network, capacity)
        cliques: list[dict] = [
            {b: {} for b in boundary} for boundary in partition.boundary
        ]
        clq_cell = s["clq_cell"].tolist()
        clq_dist = s["clq_dist"].tolist()
        clq_offsets = s["clq_offsets"].tolist()
        clq_nodes = s["clq_nodes"].tolist()
        for p in range(len(clq_cell)):
            cell = clq_cell[p]
            nodes = clq_nodes[clq_offsets[p]:clq_offsets[p + 1]]
            if not 0 <= cell < partition.num_cells or len(nodes) < 2:
                raise GraphError(f"malformed clique record for cell {cell}")
            b, b2 = nodes[0], nodes[-1]
            if b not in cliques[cell] or b2 not in cliques[cell]:
                raise GraphError(
                    f"clique endpoints {b}, {b2} are not boundary nodes "
                    f"of cell {cell}"
                )
            cliques[cell][b][b2] = PathResult(
                source=b, destination=b2, nodes=tuple(nodes),
                distance=clq_dist[p],
            )
    except (KeyError, ValueError, TypeError) as exc:
        blob.close()
        raise GraphError(f"malformed overlay blob {path}") from exc
    except GraphError:
        blob.close()
        raise
    blob.close()  # everything is materialized; release the mapping
    cell_csr: list = []
    cell_rcsr: list = []
    for cell in range(partition.num_cells):
        fcsr, rcsr = OverlayGraph._cell_graphs(network, partition, cell, kernel)
        cell_csr.append(fcsr)
        cell_rcsr.append(rcsr)
    if meta.get("nested"):
        super_capacity = meta.get("super_capacity")
        return NestedOverlayGraph(
            network, partition, kernel, cliques, cell_csr, cell_rcsr,
            SearchStats(), 0,
            super_capacity=(
                int(super_capacity) if super_capacity is not None else None
            ),
        )
    return OverlayGraph(
        network, partition, kernel, cliques, cell_csr, cell_rcsr,
        SearchStats(), 0,
    )
