"""Asyncio HTTP gateway with shard-aware multi-process dispatch.

The network front door of the serving layer: a zero-dependency
HTTP/1.1 server (stdlib :mod:`asyncio` only — no web framework in the
image, none required) that admits requests through the versioned wire
schema (:mod:`repro.service.wire`) and answers them from
:class:`~repro.service.serving.ServingStack` instances running in
*separate processes*, so the GIL stops being the throughput ceiling.

Request path::

    client ──HTTP──▶ middleware chain ──▶ router ──▶ shard queues
                      │ request-id                     │ micro-batch
                      │ route aliases                  ▼ window
                      │ redacted access log     ShardWorkerPool
                      │ admission control        (N processes, each a
                      ▼ (429 + Retry-After)       warmed ServingStack)

Sharding: each query is routed by
:meth:`~repro.service.serving.ServingStack.dispatch_hint` — the
partition cell of its first source when the engine artifact is a
partition overlay — modulo the worker count, falling back to a stable
hash for engines without a partition.  Per-shard asyncio queues apply a
micro-batch admission window, so one pipe round-trip carries several
queries and the worker's own :class:`~repro.service.serving.QueryCoalescer`
(when configured) sees real concurrent batches.

Worker handoff: the parent warms its stack once, force-spills the
preprocessing artifact (:meth:`~repro.service.cache.PreprocessingCache.spill_now`)
and starts ``spawn`` workers pointed at the same spill directory — each
worker's ``warm()`` is an mmap-backed blob load
(:mod:`repro.service.blob`), not a rebuild, so cold workers come up in
milliseconds and report their measured ``warm_ms``.

Privacy: the HTTP boundary upholds the obs-layer redaction invariant.
Access-log fields are validated against
:data:`~repro.obs.trace.FORBIDDEN_ATTR_KEYS` at write time (the
:class:`~repro.obs.trace.Span` pattern), and error bodies carry only
generic :data:`~repro.service.wire.ERROR_CODES` messages — core
exception text, which interpolates raw node ids, never crosses the
wire.  Route aliases follow the obfuscated-route-code idiom: clients
may address endpoints by numeric codes (``/v1/1.1``) that the alias
middleware rewrites to handler names, keeping endpoint names out of
intermediary logs.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import multiprocessing
import re
import tempfile
import threading
import uuid
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import FORBIDDEN_ATTR_KEYS
from repro.service.serving import ServingConfig, ServingStack
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    BatchRequest,
    ErrorResponse,
    RouteRequest,
    RouteResponse,
    WireError,
    canonical_json,
)

__all__ = [
    "API_PREFIX",
    "ROUTE_ALIASES",
    "ACCESS_LOGGER",
    "GatewayConfig",
    "Gateway",
    "GatewayServer",
    "ShardWorkerPool",
    "redacted_fields",
]

#: version prefix every endpoint lives under
API_PREFIX = "/v1"

#: obfuscated numeric route codes -> endpoint names (the
#: RouteObfuscationMiddleware idiom: clients can address endpoints by
#: opaque codes so intermediary logs never see endpoint names)
ROUTE_ALIASES = {
    "1.1": "route",
    "1.2": "batch",
    "1.3": "health",
    "1.4": "metrics",
    "1.5": "reweight",
}

#: logger name of the gateway's JSON access log
ACCESS_LOGGER = "repro.gateway.access"

#: HTTP status for each wire error code
_STATUS_FOR_CODE = {
    "invalid_json": 400,
    "invalid_request": 400,
    "unknown_route": 404,
    "bad_method": 405,
    "no_path": 422,
    "overloaded": 429,
    "internal": 500,
}

#: request bodies larger than this are refused outright
_MAX_BODY_BYTES = 1 << 20

_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def redacted_fields(**fields: object) -> dict:
    """Validate access-log fields against the redaction invariant.

    The write-time enforcement point for the HTTP boundary, mirroring
    :meth:`repro.obs.trace.Span.set`: any field key in
    :data:`~repro.obs.trace.FORBIDDEN_ATTR_KEYS` (sources,
    destinations, paths, ...) is refused with :class:`ValueError`, so a
    log statement that would carry endpoint payloads fails loudly in
    tests instead of leaking quietly in production.
    """
    for key in fields:
        if key in FORBIDDEN_ATTR_KEYS:
            raise ValueError(
                f"access-log field {key!r} would carry endpoint payloads; "
                "log sizes, counts or cell ids instead"
            )
    return fields


@dataclass(frozen=True, slots=True)
class GatewayConfig:
    """Frozen knobs of the HTTP gateway.

    Attributes
    ----------
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`Gateway.port` after start).
    workers:
        Shard worker processes.  0 serves in-process (no extra
        processes) — the mode single-core hosts and tests use; N >= 1
        starts N ``spawn`` processes, each holding a warmed
        :class:`~repro.service.serving.ServingStack`.
    max_inflight:
        Admission-control ceiling: requests admitted concurrently
        beyond this are refused with 429 + ``Retry-After``.
    retry_after_s:
        The ``Retry-After`` hint (seconds) sent with 429 responses.
    window_ms:
        Micro-batch admission window per shard: the first queued query
        waits up to this long for window-mates before its batch is
        dispatched.  0 still batches opportunistically (whatever is
        queued at dispatch time goes in one batch).
    max_batch:
        Queries per dispatched micro-batch (>= 1).
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 0
    max_inflight: int = 64
    retry_after_s: float = 0.05
    window_ms: float = 0.0
    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.window_ms < 0:
            raise ValueError("window_ms must be >= 0")


@dataclass(slots=True)
class _HTTPRequest:
    """One parsed HTTP request (internal to the gateway)."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes
    request_id: str = ""
    route: str = ""


@dataclass(slots=True)
class _HTTPResponse:
    """One HTTP response about to be written (internal to the gateway)."""

    status: int
    body: str
    headers: dict[str, str] = field(default_factory=dict)


def _error_response(
    code: str, retry_after_s: float | None = None
) -> _HTTPResponse:
    wire = ErrorResponse(code, retry_after_s=retry_after_s)
    response = _HTTPResponse(_STATUS_FOR_CODE[code], wire.to_json())
    if retry_after_s is not None:
        # RFC 9110 §10.2.3: Retry-After is integer delta-seconds; the
        # precise float hint stays in the JSON body (retry_after_s) for
        # clients that understand it.
        response.headers["Retry-After"] = str(
            max(1, math.ceil(retry_after_s))
        )
    return response


def _evaluate_pairs(stack: ServingStack, pairs: list[tuple]) -> list[dict]:
    """Answer decoded endpoint pairs; one result envelope per pair.

    The single evaluation routine used by both the in-process mode and
    every shard worker, so all modes encode answers identically (the
    byte-identity property the gateway gate checks).  A batch that
    fails as a whole is retried query-by-query so one failing query
    cannot poison its window-mates: each pair independently yields
    ``{"ok": <RouteResponse dict>}`` or ``{"err": <code>}``.
    """
    from repro.core.query import ObfuscatedPathQuery
    from repro.exceptions import NoPathError, ReproError

    def encode(response) -> dict:
        return {"ok": RouteResponse.from_server(response).to_dict()}

    try:
        queries = [
            ObfuscatedPathQuery(tuple(s), tuple(t)) for s, t in pairs
        ]
    except ReproError:
        queries = None
    if queries is not None:
        try:
            return [encode(r) for r in stack.answer_batch(queries)]
        except ReproError:
            pass  # isolate the failing query below
    out: list[dict] = []
    for s, t in pairs:
        try:
            out.append(encode(
                stack.answer(ObfuscatedPathQuery(tuple(s), tuple(t)))
            ))
        except NoPathError:
            out.append({"err": "no_path"})
        except ReproError:
            out.append({"err": "invalid_request"})
        except Exception:  # pragma: no cover - defensive
            out.append({"err": "internal"})
    return out


def _shard_report(stack: ServingStack) -> dict:
    """One worker's contribution to ``/v1/metrics`` (counts only)."""
    coalesce = stack.coalesce_snapshot()
    return {
        "epoch": stack.epoch,
        "cache": stack.snapshot().to_dict(),
        "coalesce": coalesce.to_dict() if coalesce is not None else None,
    }


def _worker_main(conn, network, config: ServingConfig) -> None:
    """Entry point of one shard worker process.

    Builds a stack from the pickled ``(network, config)`` pair, warms
    it (an mmap blob load when the parent pre-spilled the artifact into
    the shared spill dir — see :mod:`repro.service.blob`) and serves
    pipe requests until ``stop``.  The measured warm-up wall time is
    reported as ``warm_ms`` in every ``metrics`` reply, so the gateway
    gate can assert cold workers start in milliseconds.
    """
    import time

    stack = ServingStack.from_config(network, config)
    try:
        t0 = time.perf_counter()
        stack.warm()
        warm_ms = (time.perf_counter() - t0) * 1000.0
        while True:
            message = conn.recv()
            op = message[0]
            if op == "stop":
                conn.send(("ok", None))
                break
            try:
                if op == "ping":
                    conn.send(("ok", "pong"))
                elif op == "batch":
                    conn.send(("ok", _evaluate_pairs(stack, message[1])))
                elif op == "reweight":
                    outcome = stack.reweight(
                        [tuple(c) for c in message[1]], epoch=True
                    )
                    conn.send(("ok", {
                        "edges": outcome.edges,
                        "touched_cells": len(outcome.touched_cells),
                        "recustomized": outcome.recustomized,
                        "epoch": outcome.epoch,
                    }))
                elif op == "metrics":
                    report = _shard_report(stack)
                    report["warm_ms"] = round(warm_ms, 3)
                    conn.send(("ok", report))
                else:
                    conn.send(("err", "internal"))
            except Exception:
                conn.send(("err", "internal"))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown
        pass
    finally:
        stack.close()
        conn.close()


class ShardWorkerPool:
    """N shard worker processes, each a warmed serving stack.

    The parent warms its own stack first and force-spills the
    preprocessing artifact so workers (``spawn`` context — no inherited
    locks or threads) reload it from the shared spill directory instead
    of rebuilding.  Calls are pipe round-trips serialized per worker by
    a lock; the gateway runs them on executor threads so the event loop
    never blocks on a pipe.
    """

    def __init__(self, network, config: ServingConfig, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers: list[tuple] = []
        ctx = multiprocessing.get_context("spawn")
        for _ in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, network, config),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn, threading.Lock()))

    def __len__(self) -> int:
        """Number of shard workers."""
        return len(self._workers)

    def call(self, shard: int, message: tuple, timeout: float = 60.0):
        """One pipe round-trip to the worker owning ``shard`` (blocking).

        Returns the worker's payload, or raises :class:`RuntimeError`
        (mapped to an ``internal`` error upstream) when the worker is
        gone or over deadline.
        """
        process, conn, lock = self._workers[shard % len(self._workers)]
        with lock:
            try:
                conn.send(message)
                if not conn.poll(timeout):
                    raise RuntimeError("worker timed out")
                status, payload = conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise RuntimeError("worker unavailable") from exc
        if status != "ok":
            raise RuntimeError("worker error")
        return payload

    def broadcast(self, message: tuple) -> list:
        """Send ``message`` to every worker; collect the payloads."""
        return [
            self.call(shard, message) for shard in range(len(self._workers))
        ]

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every worker answers a ping (warmed and serving)."""
        for shard in range(len(self._workers)):
            self.call(shard, ("ping",), timeout=timeout)

    def close(self) -> None:
        """Stop every worker process (idempotent)."""
        for process, conn, lock in self._workers:
            with lock:
                try:
                    conn.send(("stop",))
                    conn.poll(5.0)
                except (BrokenPipeError, OSError):
                    pass
                finally:
                    conn.close()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        self._workers = []


class Gateway:
    """The asyncio HTTP gateway (see the module docstring for the path).

    Parameters
    ----------
    network:
        Road network to serve.
    serving:
        :class:`~repro.service.serving.ServingConfig` for the parent
        stack and (shipped over ``spawn``) every shard worker.  When
        ``workers > 0`` and no spill dir is configured, a temporary one
        is created so the artifact handoff works out of the box.
    config:
        :class:`GatewayConfig` (bind address, workers, admission).
    metrics:
        Optional shared registry for the gateway's own instruments.
    """

    def __init__(
        self,
        network,
        serving: ServingConfig | None = None,
        config: GatewayConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else GatewayConfig()
        serving = serving if serving is not None else ServingConfig()
        if self.config.workers > 0 and serving.spill_dir is None:
            self._tmp_spill = tempfile.TemporaryDirectory(
                prefix="repro-gateway-"
            )
            serving = ServingConfig(
                engine=serving.engine,
                max_workers=serving.max_workers,
                coalesce=serving.coalesce,
                spill_dir=self._tmp_spill.name,
                preprocessing_capacity=serving.preprocessing_capacity,
                result_capacity=serving.result_capacity,
            )
        else:
            self._tmp_spill = None
        self.serving = serving
        self.network = network
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "repro_gateway_requests_total",
            desc="HTTP requests admitted by the gateway",
        )
        self._m_rejected = self.metrics.counter(
            "repro_gateway_rejected_total",
            desc="HTTP requests refused by admission control (429)",
        )
        self._m_errors = self.metrics.counter(
            "repro_gateway_errors_total",
            desc="HTTP responses with an error body",
        )
        self._m_request_seconds = self.metrics.histogram(
            "repro_gateway_request_seconds",
            desc="request wall latency through the middleware chain",
        )
        self._log = logging.getLogger(ACCESS_LOGGER)
        self.stack: ServingStack | None = None
        self.pool: ShardWorkerPool | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queues: dict[int, asyncio.Queue] = {}
        self._flushers: list[asyncio.Task] = []
        self._inflight = 0
        self._handler = self._build_chain(self._route_request)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Warm the serving side, start workers, bind the port."""
        self.stack = ServingStack.from_config(
            self.network, self.serving, metrics=self.metrics
        )
        self.stack.warm()
        if self.config.workers > 0:
            fingerprint = self.stack._fingerprint()
            self.stack.preprocessing.spill_now(
                fingerprint, self.serving.engine
            )
            loop = asyncio.get_running_loop()
            self.pool = await loop.run_in_executor(
                None,
                lambda: ShardWorkerPool(
                    self.network, self.serving, self.config.workers
                ),
            )
            await loop.run_in_executor(None, self.pool.wait_ready)
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        return self.address[1]

    async def stop(self) -> None:
        """Stop accepting, drain flushers, stop workers, close the stack."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._flushers:
            task.cancel()
        if self._flushers:
            await asyncio.gather(*self._flushers, return_exceptions=True)
        self._flushers = []
        self._queues = {}
        if self.pool is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.pool.close)
            self.pool = None
        if self.stack is not None:
            self.stack.close()
            self.stack = None
        if self._tmp_spill is not None:
            self._tmp_spill.cleanup()
            self._tmp_spill = None

    # -- middleware chain ----------------------------------------------

    def _build_chain(
        self,
        handler: Callable[[_HTTPRequest], Awaitable[_HTTPResponse]],
    ) -> Callable[[_HTTPRequest], Awaitable[_HTTPResponse]]:
        """Compose the middleware chain, outermost first."""
        handler = self._admission_middleware(handler)
        handler = self._access_log_middleware(handler)
        handler = self._route_alias_middleware(handler)
        handler = self._request_id_middleware(handler)
        return handler

    def _request_id_middleware(self, handler):
        """Assign (or validate and echo) ``X-Request-Id``."""
        async def wrapped(request: _HTTPRequest) -> _HTTPResponse:
            supplied = request.headers.get("x-request-id", "")
            if not _REQUEST_ID_RE.match(supplied):
                supplied = uuid.uuid4().hex[:16]
            request.request_id = supplied
            response = await handler(request)
            response.headers["X-Request-Id"] = supplied
            return response

        return wrapped

    def _route_alias_middleware(self, handler):
        """Rewrite obfuscated numeric route codes to endpoint names.

        The RouteObfuscationMiddleware idiom: ``/v1/1.1`` becomes
        ``/v1/route`` before routing, so clients can keep endpoint
        names out of intermediary access logs entirely.
        """
        async def wrapped(request: _HTTPRequest) -> _HTTPResponse:
            path = request.path.split("?", 1)[0].rstrip("/")
            if path.startswith(API_PREFIX + "/"):
                tail = path[len(API_PREFIX) + 1:]
                request.route = ROUTE_ALIASES.get(tail, tail)
            else:
                request.route = ""
            return await handler(request)

        return wrapped

    def _access_log_middleware(self, handler):
        """One redaction-validated JSON access-log line per request."""
        async def wrapped(request: _HTTPRequest) -> _HTTPResponse:
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            response = await handler(request)
            elapsed = loop.time() - t0
            self._m_request_seconds.observe(elapsed)
            if response.status >= 400:
                self._m_errors.inc()
            # redacted_fields refuses endpoint-bearing keys at write
            # time — the HTTP edge of the obs redaction invariant.
            self._log.info(canonical_json(redacted_fields(
                request_id=request.request_id,
                method=request.method,
                route=request.route,
                status=response.status,
                duration_ms=round(elapsed * 1000.0, 3),
            )))
            return response

        return wrapped

    def _admission_middleware(self, handler):
        """Refuse work beyond ``max_inflight`` with 429 + Retry-After."""
        async def wrapped(request: _HTTPRequest) -> _HTTPResponse:
            if self._inflight >= self.config.max_inflight:
                self._m_rejected.inc()
                return _error_response(
                    "overloaded", retry_after_s=self.config.retry_after_s
                )
            self._inflight += 1
            self._m_requests.inc()
            try:
                return await handler(request)
            finally:
                self._inflight -= 1

        return wrapped

    # -- routing and handlers ------------------------------------------

    async def _route_request(self, request: _HTTPRequest) -> _HTTPResponse:
        """Dispatch a middleware-processed request to its handler."""
        handlers = {
            ("POST", "route"): self._handle_route,
            ("POST", "batch"): self._handle_batch,
            ("GET", "health"): self._handle_health,
            ("GET", "metrics"): self._handle_metrics,
            ("POST", "reweight"): self._handle_reweight,
        }
        route = request.route
        if not route or route not in {r for _, r in handlers}:
            return _error_response("unknown_route")
        handler = handlers.get((request.method, route))
        if handler is None:
            return _error_response("bad_method")
        try:
            return await handler(request)
        except WireError as exc:
            return _error_response(exc.code)
        except Exception:
            return _error_response("internal")

    async def _handle_route(self, request: _HTTPRequest) -> _HTTPResponse:
        decoded = RouteRequest.from_json(request.body)
        decoded.to_query()  # validate before queueing
        result = await self._submit(
            (decoded.sources, decoded.destinations)
        )
        if "err" in result:
            return _error_response(result["err"])
        return _HTTPResponse(200, canonical_json(result["ok"]))

    async def _handle_batch(self, request: _HTTPRequest) -> _HTTPResponse:
        decoded = BatchRequest.from_json(request.body)
        for entry in decoded.queries:
            entry.to_query()  # validate the whole batch before queueing
        results = await asyncio.gather(*[
            self._submit((entry.sources, entry.destinations))
            for entry in decoded.queries
        ])
        body = {
            "schema": WIRE_SCHEMA_VERSION,
            "results": [
                result["ok"] if "err" not in result
                else {"error": result["err"]}
                for result in results
            ],
        }
        return _HTTPResponse(200, canonical_json(body))

    async def _handle_health(self, request: _HTTPRequest) -> _HTTPResponse:
        body = {
            "schema": WIRE_SCHEMA_VERSION,
            "status": "ok",
            "engine": self.serving.engine,
            "workers": len(self.pool) if self.pool is not None else 0,
            "epoch": self.stack.epoch,
        }
        return _HTTPResponse(200, canonical_json(body))

    async def _handle_metrics(self, request: _HTTPRequest) -> _HTTPResponse:
        loop = asyncio.get_running_loop()
        shards = []
        if self.pool is not None:
            shards = await loop.run_in_executor(
                None, self.pool.broadcast, ("metrics",)
            )
        body = {
            "schema": 1,
            "kind": "gateway_metrics",
            "gateway": json.loads(self.metrics.to_json()),
            "serving": _shard_report(self.stack),
            "config": self.serving.to_dict(),
            "shards": shards,
        }
        return _HTTPResponse(200, canonical_json(body))

    async def _handle_reweight(self, request: _HTTPRequest) -> _HTTPResponse:
        doc = json.loads(request.body) if request.body else None
        if not isinstance(doc, dict) or not isinstance(
            doc.get("changes"), list
        ):
            return _error_response("invalid_request")
        try:
            changes = [
                (int(u), int(v), float(w)) for u, v, w in doc["changes"]
            ]
        except (TypeError, ValueError):
            return _error_response("invalid_request")
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                None,
                lambda: self.stack.reweight(changes, epoch=True),
            )
            if self.pool is not None:
                await loop.run_in_executor(
                    None, self.pool.broadcast, ("reweight", changes)
                )
        except Exception:
            return _error_response("invalid_request")
        body = {
            "schema": WIRE_SCHEMA_VERSION,
            "edges": outcome.edges,
            "touched_cells": len(outcome.touched_cells),
            "recustomized": outcome.recustomized,
            "epoch": outcome.epoch,
        }
        return _HTTPResponse(200, canonical_json(body))

    # -- shard dispatch ------------------------------------------------

    def _shard_of(self, sources: tuple[int, ...]) -> int:
        """Shard index for a query: overlay cell, else a stable hash."""
        workers = len(self.pool) if self.pool is not None else 1
        from repro.core.query import ObfuscatedPathQuery

        hint = self.stack.dispatch_hint(
            ObfuscatedPathQuery(tuple(sources), (sources[0],))
        )
        if hint is None:
            hint = hash(sources[0])
        return hint % workers

    async def _submit(self, pair: tuple) -> dict:
        """Queue one endpoint pair on its shard; await its envelope."""
        shard = self._shard_of(pair[0])
        queue = self._queues.get(shard)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[shard] = queue
            self._flushers.append(
                asyncio.create_task(self._flush_shard(shard, queue))
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await queue.put((future, pair))
        return await future

    async def _flush_shard(self, shard: int, queue: asyncio.Queue) -> None:
        """Micro-batch admission loop for one shard's queue."""
        loop = asyncio.get_running_loop()
        window = self.config.window_ms / 1000.0
        while True:
            first = await queue.get()
            batch = [first]
            deadline = loop.time() + window
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if queue.empty() and remaining <= 0:
                    break
                try:
                    if remaining > 0:
                        item = await asyncio.wait_for(
                            queue.get(), timeout=remaining
                        )
                    else:
                        item = queue.get_nowait()
                except (asyncio.TimeoutError, asyncio.QueueEmpty):
                    break
                batch.append(item)
            pairs = [pair for _, pair in batch]
            try:
                if self.pool is not None:
                    results = await loop.run_in_executor(
                        None, self.pool.call, shard, ("batch", pairs)
                    )
                else:
                    results = await loop.run_in_executor(
                        None, _evaluate_pairs, self.stack, pairs
                    )
            except Exception:
                results = [{"err": "internal"}] * len(batch)
            for (future, _), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)

    # -- HTTP plumbing -------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        """Serve HTTP/1.1 requests on one connection (keep-alive)."""
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                response = await self._handler(request)
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader) -> _HTTPRequest | None:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _ = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return _HTTPRequest(
            method=method.upper(), path=path, headers=headers, body=body
        )

    async def _write_response(
        self, writer, response: _HTTPResponse, keep_alive: bool
    ) -> None:
        """Serialize one response (the body is already canonical JSON)."""
        payload = response.body.encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(payload)),
            "Connection": "keep-alive" if keep_alive else "close",
            **response.headers,
        }
        head = f"HTTP/1.1 {response.status} {_REASONS.get(response.status, 'OK')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode("latin-1") + b"\r\n" + payload)
        await writer.drain()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class GatewayServer:
    """Thread-hosted gateway facade for tests, benchmarks and the CLI.

    Runs a :class:`Gateway` on a private event loop in a daemon thread;
    :meth:`start` blocks until the port is bound, :meth:`close` tears
    everything down.  Usable as a context manager::

        with GatewayServer(network, serving, config) as server:
            requests.post(f"http://{server.host}:{server.port}/v1/route", ...)
    """

    def __init__(
        self,
        network,
        serving: ServingConfig | None = None,
        config: GatewayConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.gateway = Gateway(
            network, serving=serving, config=config, metrics=metrics
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.host = ""
        self.port = 0

    def start(self) -> "GatewayServer":
        """Start the loop thread; block until the port is bound."""
        ready = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self.host, self.port = loop.run_until_complete(
                    self.gateway.start()
                )
            except BaseException as exc:  # surface startup errors
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.gateway.stop())
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        ready.wait()
        if failure:
            raise failure[0]
        return self

    def close(self) -> None:
        """Stop the gateway and join the loop thread (idempotent)."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GatewayServer":
        """Start on entering a ``with`` block."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Tear down on leaving a ``with`` block."""
        self.close()


def run_gateway(
    network,
    serving: ServingConfig | None = None,
    config: GatewayConfig | None = None,
) -> None:
    """Blocking entry point for ``repro serve``: serve until interrupted."""
    async def main() -> None:
        gateway = Gateway(network, serving=serving, config=config)
        host, port = await gateway.start()
        print(f"gateway listening on http://{host}:{port}{API_PREFIX}/")
        workers = config.workers if config is not None else 0
        print(f"engine={gateway.serving.engine} workers={workers}")
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            await gateway.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("gateway stopped")
