"""Thread-sharded metrics registry with JSON and Prometheus exposition.

The serving stack's :class:`~repro.service.serving.ConcurrentDispatcher`
answers one batch across several worker threads, so a naive
lock-per-increment counter would serialize the hottest code path on its
own instrumentation.  Every instrument here keeps **per-thread shards**
instead: a thread's first touch registers its own cell (one short
lock acquisition), after which increments are plain list-index writes on
the owning thread — no locks, no contention, and exact totals whenever
the shards are merged on read (writes never interleave because each cell
has exactly one writer).

Three instrument kinds cover the serving stack's needs:

* :class:`Counter` — monotonically increasing totals (cache hits,
  queries served, settled nodes);
* :class:`Gauge` — last-written or maximum values (largest coalescing
  window, search-tree radius);
* :class:`Histogram` — fixed-bucket latency/size distributions
  (batch latencies), merged shard-by-shard.

A :class:`MetricsRegistry` owns instruments by name (get-or-create, so
components can share one registry without coordination) and renders the
whole set as a JSON document (:meth:`MetricsRegistry.to_json`) or
Prometheus text exposition (:meth:`MetricsRegistry.to_prometheus`).

Privacy: metric *names* are static strings and values are aggregate
numbers, so nothing here can carry a raw node id; see the package
docstring for the invariant and the leak test that enforces it.

Examples
--------
>>> registry = MetricsRegistry()
>>> registry.counter("repro_demo_hits_total").inc()
>>> registry.counter("repro_demo_hits_total").inc(2)
>>> registry.counter("repro_demo_hits_total").value
3
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "sanitize_metric_name",
]

#: default histogram bucket upper bounds (seconds-flavored, from 100us
#: to 10s) — callers measuring counts should pass their own bounds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(raw: str) -> str:
    """Rewrite ``raw`` into a valid Prometheus metric-name fragment.

    Dots, dashes and any other illegal characters become underscores
    (``"overlay.route"`` -> ``"overlay_route"``); a leading digit gains
    an underscore prefix.
    """
    name = _SANITIZE_RE.sub("_", raw)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


class _Instrument:
    """Shared shard bookkeeping for all instrument kinds.

    Subclasses define ``_new_shard()`` (the per-thread cell) and read
    the merged value off ``_shards`` under ``_lock``.
    """

    __slots__ = ("name", "desc", "_shards", "_lock")

    def __init__(self, name: str, desc: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
            )
        self.name = name
        self.desc = desc
        self._shards: dict[int, list] = {}
        self._lock = threading.Lock()

    def _shard(self) -> list:
        """This thread's private cell (registered under the lock once)."""
        ident = threading.get_ident()
        shard = self._shards.get(ident)
        if shard is None:
            with self._lock:
                shard = self._shards.setdefault(ident, self._new_shard())
        return shard

    def _new_shard(self) -> list:  # pragma: no cover - abstract
        raise NotImplementedError

    def reset(self) -> None:
        """Drop every shard, returning the instrument to zero."""
        with self._lock:
            self._shards.clear()


class Counter(_Instrument):
    """Monotonically increasing total, sharded per writing thread."""

    __slots__ = ()

    def _new_shard(self) -> list:
        return [0]

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (>= 0) to this thread's shard."""
        if amount < 0:
            raise ValueError("counters only go up")
        self._shard()[0] += amount

    @property
    def value(self) -> int | float:
        """Merged total across all thread shards."""
        with self._lock:
            return sum(shard[0] for shard in self._shards.values())


class Gauge(_Instrument):
    """Point-in-time value; supports ``set``, ``inc`` and ``set_max``.

    Gauges are written rarely (once per batch, not per node), so they
    take the instrument lock on every write instead of sharding —
    last-write-wins and running-max semantics need a single cell.
    """

    __slots__ = ()

    def _new_shard(self) -> list:  # pragma: no cover - gauges do not shard
        return [0.0]

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        with self._lock:
            self._shards[0] = [value]

    def inc(self, amount: float = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            cell = self._shards.setdefault(0, [0.0])
            cell[0] += amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is the new maximum."""
        with self._lock:
            cell = self._shards.setdefault(0, [value])
            if value > cell[0]:
                cell[0] = value

    @property
    def value(self) -> float:
        """Current gauge value (0 when never written)."""
        with self._lock:
            cell = self._shards.get(0)
            return cell[0] if cell is not None else 0


class Histogram(_Instrument):
    """Fixed-bucket distribution, sharded per writing thread.

    Each shard holds ``[bucket_counts..., count, sum]``; ``observe`` is
    a bisect plus three list writes on the owning thread.  Bucket
    bounds are upper bounds; values above the last bound land in the
    implicit ``+Inf`` bucket.
    """

    __slots__ = ("buckets",)

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        desc: str = "",
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be strictly increasing and non-empty")
        super().__init__(name, desc)
        self.buckets = tuple(float(b) for b in buckets)

    def _new_shard(self) -> list:
        # one cell per finite bucket + the +Inf bucket + count + sum
        return [0] * (len(self.buckets) + 1) + [0, 0.0]

    def observe(self, value: float) -> None:
        """Record one sample."""
        shard = self._shard()
        shard[bisect_left(self.buckets, value)] += 1
        shard[-2] += 1
        shard[-1] += value

    def _merged(self) -> list:
        with self._lock:
            merged = self._new_shard()
            for shard in self._shards.values():
                for i, cell in enumerate(shard):
                    merged[i] += cell
            return merged

    @property
    def count(self) -> int:
        """Total samples observed."""
        return self._merged()[-2]

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        return self._merged()[-1]

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The final pair's bound is ``float("inf")`` and its count equals
        :attr:`count`.
        """
        merged = self._merged()
        bounds = list(self.buckets) + [float("inf")]
        pairs = []
        running = 0
        for bound, cell in zip(bounds, merged):
            running += cell
            pairs.append((bound, running))
        return pairs

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample.

        The standard bucketed estimate (what a Prometheus
        ``histogram_quantile`` computes server-side): walk the
        cumulative bucket counts until ``ceil(q * count)`` samples are
        covered and report that bucket's upper bound.  Returns 0.0 for
        an empty histogram; samples beyond the last finite bound
        estimate as that last finite bound (there is no useful number
        for "+Inf").  The live traffic pipeline reads its staleness
        p95 through this — a conservative (never under-reporting)
        estimate as long as the bucket grid brackets the real latency.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        pairs = self.bucket_counts()
        total = pairs[-1][1]
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        for bound, running in pairs:
            if running >= rank:
                return bound if bound != float("inf") else self.buckets[-1]
        return self.buckets[-1]  # pragma: no cover - cumulative invariant


class MetricsRegistry:
    """Named instruments with get-or-create access and exposition.

    One registry per serving stack (the default) keeps component
    counters isolated; passing a shared registry to several components
    is fine as long as their metric names differ — get-or-create makes
    the sharing coordination-free.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, kind, name: str, *args, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, *args, **kwargs)
                self._instruments[name] = instrument
            elif type(instrument) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str, desc: str = "") -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get_or_create(Counter, name, desc=desc)

    def gauge(self, name: str, desc: str = "") -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get_or_create(Gauge, name, desc=desc)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        desc: str = "",
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get_or_create(Histogram, name, buckets, desc=desc)

    def __contains__(self, name: str) -> bool:
        """Whether an instrument called ``name`` exists."""
        with self._lock:
            return name in self._instruments

    def reset(self) -> None:
        """Zero every instrument (the instruments themselves survive)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()

    def collect(self) -> dict[str, dict]:
        """Snapshot every instrument as plain JSON-ready dicts."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        out: dict[str, dict] = {}
        for name, instrument in instruments:
            if isinstance(instrument, Counter):
                out[name] = {
                    "type": "counter",
                    "value": instrument.value,
                    "desc": instrument.desc,
                }
            elif isinstance(instrument, Gauge):
                out[name] = {
                    "type": "gauge",
                    "value": instrument.value,
                    "desc": instrument.desc,
                }
            else:
                assert isinstance(instrument, Histogram)
                out[name] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": [
                        ["+Inf" if bound == float("inf") else bound, count]
                        for bound, count in instrument.bucket_counts()
                    ],
                    "desc": instrument.desc,
                }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """The whole registry as one JSON document (schema 1)."""
        return json.dumps(
            {"schema": 1, "metrics": self.collect()}, indent=indent
        )

    def to_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for name, doc in self.collect().items():
            if doc["desc"]:
                lines.append(f"# HELP {name} {doc['desc']}")
            lines.append(f"# TYPE {name} {doc['type']}")
            if doc["type"] in ("counter", "gauge"):
                lines.append(f"{name} {doc['value']}")
                continue
            for bound, count in doc["buckets"]:
                lines.append(f'{name}_bucket{{le="{bound}"}} {count}')
            lines.append(f"{name}_sum {doc['sum']}")
            lines.append(f"{name}_count {doc['count']}")
        return "\n".join(lines) + "\n"
