"""Privacy-aware telemetry: metrics, trace spans, and kernel recorders.

The observability layer of the serving stack, in three stdlib-only
modules:

* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters, gauges and fixed-bucket histograms whose write path is
  per-thread sharded (lock-free increments under the dispatcher's worker
  threads, exact totals on merge), with JSON and Prometheus-text
  exposition;
* :mod:`repro.obs.trace` — explicit-context span trees
  (:class:`~repro.obs.trace.Tracer`) with JSONL export and a
  threshold-configurable slow-query log on stdlib ``logging``;
* :mod:`repro.obs.record` — the kernel profiling hook: a
  :class:`~repro.obs.record.Recorder` protocol with a zero-overhead
  disabled default, consulted once per kernel invocation by
  :mod:`repro.search.kernels`, :mod:`repro.search.overlay` and
  :mod:`repro.search.ch.query`.

**Privacy invariant.**  The serving stack answers obfuscated queries
``Q(S, T)`` whose whole point is that the server never learns the true
endpoints.  Telemetry must not undo that: spans and metrics carry
*aggregates only* — set sizes, settled-node counts, partition cell ids,
durations — never raw node ids.  :class:`~repro.obs.trace.Span` rejects
attribute keys that smell like endpoint payloads, and
``tests/obs/test_privacy_leak.py`` scans every serialized output for
node ids of an obfuscated workload.

This package never imports :mod:`repro.search` or :mod:`repro.service`
(they import *us*), so the hooks can sit on the hottest kernels without
import cycles.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.record import (
    MetricsRecorder,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.trace import JSONLogFormatter, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "MetricsRecorder",
    "set_recorder",
    "get_recorder",
    "recording",
    "Span",
    "Tracer",
    "JSONLogFormatter",
]
