"""Explicit-context span trees with JSONL export and a slow-query log.

A :class:`Tracer` produces :class:`Span` trees for the serving stack's
per-query pipeline (``serve.answer_batch`` -> cache consult -> dispatch
worker -> engine kernel; the coalesced path roots its own
``serve.coalesce_window`` trees because one window may serve several
sessions).  Context is *explicit*: a child span names its parent via the
``parent=`` argument instead of ambient thread-local state, so spans
created on dispatcher worker threads attach to the batch span that
spawned them without any contextvars plumbing.

Determinism: the tracer's clock is injectable
(:class:`~repro.service.serving.CoalesceConfig` set the pattern), so
tests assert exact durations.

**Privacy.**  Span attributes carry aggregates — obfuscated-set sizes,
settled-node counts, cache hit flags, window sizes, partition cell ids —
never raw endpoints.  :meth:`Span.set` rejects attribute keys that name
endpoint payloads (``sources``, ``destinations``, ``nodes``, ...) so a
leak cannot be introduced by accident; the serialized-output scan in
``tests/obs/test_privacy_leak.py`` backstops the convention for values.

Slow-query logging rides stdlib :mod:`logging`: when a *root* span
finishes over the tracer's threshold it is emitted on the
``repro.obs.slowquery`` logger, and :class:`JSONLogFormatter` renders
such records as one JSON object per line.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections.abc import Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JSONLogFormatter",
    "SLOW_QUERY_LOGGER",
    "FORBIDDEN_ATTR_KEYS",
]

#: logger name slow root spans are emitted on
SLOW_QUERY_LOGGER = "repro.obs.slowquery"

#: span attribute keys that would carry raw endpoint node ids — refused
#: at write time so telemetry cannot leak what obfuscation hides.  Record
#: ``num_sources`` / ``num_destinations`` / ``cell`` instead.
FORBIDDEN_ATTR_KEYS = frozenset(
    {
        "source", "sources",
        "destination", "destinations",
        "endpoint", "endpoints",
        "node", "nodes", "node_id", "node_ids",
        "path", "paths",
        "query", "queries",
    }
)


class Span:
    """One timed operation in a trace tree.

    Created via :meth:`Tracer.span` (a context manager); use
    :meth:`set` to attach attributes while the span is open.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start", "end", "attrs", "children",
    )

    def __init__(self, name: str, span_id: int, parent_id: int | None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = 0.0
        self.end: float | None = None
        self.attrs: dict[str, object] = {}
        self.children: list[Span] = []

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (aggregates only — see module docstring)."""
        if key in FORBIDDEN_ATTR_KEYS:
            raise ValueError(
                f"span attribute {key!r} would carry endpoint payloads; "
                "record sizes, counts or cell ids instead"
            )
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        """Seconds between start and end (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        """This span and its subtree as one JSON-ready dict."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration:.6f})"
        )


class _SpanContext:
    """Context manager binding one span to a tracer's lifecycle hooks."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.span.start = self._tracer.clock()
        return self.span

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self.span)


class Tracer:
    """Factory and store for span trees.

    Parameters
    ----------
    clock:
        Monotonic time source; injectable for deterministic tests.
    slow_threshold_s:
        Root spans finishing at or over this duration are logged on
        :data:`SLOW_QUERY_LOGGER` (``None`` disables the slow log).
    max_roots:
        Retention cap: once this many root trees are stored, further
        roots still time and log but are dropped from :attr:`roots`
        (counted in :attr:`dropped`) so a long replay cannot grow
        memory without bound.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        slow_threshold_s: float | None = None,
        max_roots: int = 10_000,
    ) -> None:
        if max_roots < 1:
            raise ValueError("max_roots must be >= 1")
        self.clock = clock
        self.slow_threshold_s = slow_threshold_s
        self.max_roots = max_roots
        #: finished root span trees, in finish order
        self.roots: list[Span] = []
        #: root trees dropped by the retention cap
        self.dropped = 0
        self._lock = threading.Lock()
        self._next_id = 1

    def span(
        self, name: str, parent: Span | None = None, **attrs: object
    ) -> _SpanContext:
        """Open a span as a context manager.

        ``parent=None`` makes a root; otherwise the new span is attached
        under ``parent`` (thread-safe — dispatcher workers attach
        children to the same batch span concurrently).  Keyword
        arguments become initial attributes, validated like
        :meth:`Span.set`.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name, span_id, parent.span_id if parent is not None else None
        )
        for key, value in attrs.items():
            span.set(key, value)
        if parent is not None:
            with self._lock:
                parent.children.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        if span.parent_id is not None:
            return
        with self._lock:
            if len(self.roots) < self.max_roots:
                self.roots.append(span)
            else:
                self.dropped += 1
        threshold = self.slow_threshold_s
        if threshold is not None and span.duration >= threshold:
            logging.getLogger(SLOW_QUERY_LOGGER).warning(
                "slow span %s took %.3f ms",
                span.name,
                span.duration * 1e3,
                extra={"span": span.to_dict()},
            )

    def reset(self) -> None:
        """Forget every stored root tree (ids keep counting up)."""
        with self._lock:
            self.roots.clear()
            self.dropped = 0

    def export_jsonl(self) -> str:
        """Every stored root tree as one JSON object per line."""
        with self._lock:
            roots = list(self.roots)
        return "".join(
            json.dumps(root.to_dict(), sort_keys=True) + "\n" for root in roots
        )

    def write_jsonl(self, path) -> int:
        """Write :meth:`export_jsonl` to ``path``; returns the root count."""
        from pathlib import Path

        text = self.export_jsonl()
        Path(path).write_text(text, encoding="utf-8")
        return text.count("\n")


class _NullSpan(Span):
    """Shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        """Discard the attribute (still refuses forbidden keys)."""
        if key in FORBIDDEN_ATTR_KEYS:
            raise ValueError(
                f"span attribute {key!r} would carry endpoint payloads; "
                "record sizes, counts or cell ids instead"
            )


class _NullSpanContext:
    """Context manager yielding the shared null span."""

    __slots__ = ("span",)

    def __init__(self, span: _NullSpan) -> None:
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> None:
        return None


class NullTracer:
    """Tracing disabled: every ``span()`` yields one shared no-op span.

    The serving stack holds one of these when no tracer is configured,
    so the hot path pays a kwargs dict and one method call per span
    site and nothing else — no ids, no clock reads, no storage.
    """

    __slots__ = ("_context",)

    def __init__(self) -> None:
        span = _NullSpan("null", 0, None)
        self._context = _NullSpanContext(span)

    def span(
        self, name: str, parent: Span | None = None, **attrs: object
    ) -> _NullSpanContext:
        """Return the shared no-op span context."""
        return self._context


#: process-wide shared disabled tracer
NULL_TRACER = NullTracer()


class JSONLogFormatter(logging.Formatter):
    """Render log records as one JSON object per line.

    Records carrying a ``span`` attribute (the slow-query log's payload)
    embed the serialized span tree under ``"span"``.
    """

    def format(self, record: logging.LogRecord) -> str:
        """One JSON line for ``record``."""
        doc: dict[str, object] = {
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = getattr(record, "span", None)
        if span is not None:
            doc["span"] = span
        return json.dumps(doc, sort_keys=True)
