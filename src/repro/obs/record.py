"""Kernel profiling hooks: a recorder protocol with a zero-cost default.

The CSR kernels (:mod:`repro.search.kernels`), the partition overlay
(:mod:`repro.search.overlay`) and the CH query loops
(:mod:`repro.search.ch.query`) each consult this module **once per
kernel invocation**, at the point where their locally accumulated
counters are merged into :class:`~repro.search.result.SearchStats`:

.. code-block:: python

    rec = record.RECORDER
    if rec is not None:
        rec.record("csr_dijkstra", settled, relaxed, pushes)

Disabled (the default, ``RECORDER is None``) the hook costs one module
attribute read and one ``is None`` branch per kernel call — never
anything inside the search loops.  The CI perf gate holds the
``telemetry_overhead_pct`` metric of ``tools/bench_quick.py`` under 5%
even with a *recording* collector attached, which upper-bounds the
disabled cost.

Recorders receive aggregate counters and partition cell ids only —
never node ids — matching the package-wide privacy invariant.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Protocol, runtime_checkable

from repro.obs.metrics import MetricsRegistry, sanitize_metric_name

__all__ = [
    "Recorder",
    "MetricsRecorder",
    "RECORDER",
    "set_recorder",
    "get_recorder",
    "recording",
]


@runtime_checkable
class Recorder(Protocol):
    """What a kernel profiling collector must implement."""

    def record(
        self,
        kernel: str,
        settled: int = 0,
        relaxed: int = 0,
        pushes: int = 0,
        cells: tuple[int, ...] = (),
    ) -> None:
        """Account one kernel invocation's aggregate counters.

        Parameters
        ----------
        kernel:
            Static kernel identifier (``"csr_dijkstra"``,
            ``"overlay_route"``, ...).
        settled, relaxed, pushes:
            The invocation's settled-node / relaxed-edge / heap-push
            counts.
        cells:
            Partition cell ids the invocation touched (overlay queries
            only; cell ids are aggregate layout facts, not endpoints).
        """
        ...  # pragma: no cover - protocol


#: the process-wide active recorder; ``None`` = profiling disabled.
#: Kernels read this module attribute directly so the disabled cost is
#: one attribute load and one branch per kernel call.
RECORDER: Recorder | None = None

_lock = threading.Lock()


def set_recorder(recorder: Recorder | None) -> Recorder | None:
    """Install ``recorder`` process-wide; returns the previous one."""
    global RECORDER
    with _lock:
        previous = RECORDER
        RECORDER = recorder
        return previous


def get_recorder() -> Recorder | None:
    """The currently installed recorder (``None`` when disabled)."""
    return RECORDER


@contextmanager
def recording(recorder: Recorder):
    """Install ``recorder`` for the duration of a ``with`` block.

    Restores whatever was installed before, so scoped profiling (a
    bench section, one experiment run) cannot leak into later code.
    """
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


class MetricsRecorder:
    """Recorder feeding per-kernel counters into a metrics registry.

    Creates four counters per distinct kernel name on first sight —
    ``repro_kernel_<kernel>_{calls,settled,relaxed,pushes}_total`` —
    plus ``repro_kernel_cells_touched_total`` for overlay cell visits.
    Instruments are cached on this recorder, so the steady-state cost
    per invocation is a few dict lookups and counter increments.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._by_kernel: dict[str, tuple] = {}
        self._cells = self.registry.counter(
            "repro_kernel_cells_touched_total",
            desc="partition cells touched by overlay kernel invocations",
        )
        self._lock = threading.Lock()

    def _instruments(self, kernel: str) -> tuple:
        instruments = self._by_kernel.get(kernel)
        if instruments is None:
            base = f"repro_kernel_{sanitize_metric_name(kernel)}"
            instruments = (
                self.registry.counter(
                    f"{base}_calls_total", desc=f"{kernel} invocations"
                ),
                self.registry.counter(
                    f"{base}_settled_total", desc=f"nodes settled by {kernel}"
                ),
                self.registry.counter(
                    f"{base}_relaxed_total", desc=f"edges relaxed by {kernel}"
                ),
                self.registry.counter(
                    f"{base}_pushes_total", desc=f"heap pushes by {kernel}"
                ),
            )
            with self._lock:
                instruments = self._by_kernel.setdefault(kernel, instruments)
        return instruments

    def record(
        self,
        kernel: str,
        settled: int = 0,
        relaxed: int = 0,
        pushes: int = 0,
        cells: tuple[int, ...] = (),
    ) -> None:
        """Accumulate one invocation into the registry's counters."""
        calls, c_settled, c_relaxed, c_pushes = self._instruments(kernel)
        calls.inc()
        if settled:
            c_settled.inc(settled)
        if relaxed:
            c_relaxed.inc(relaxed)
        if pushes:
            c_pushes.inc(pushes)
        if cells:
            self._cells.inc(len(cells))
