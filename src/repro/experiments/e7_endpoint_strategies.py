"""E7 — Fake endpoint strategy ablation (cost vs. plausibility).

Section III-B observes that obfuscation is nearly free when fakes do not
stretch ``max_t ||s,t||`` — the compact strategy's design goal — while
fakes must also look plausible or a prior-aware adversary discounts them.
For each strategy we measure:

* cost inflation — shared-tree settled nodes for Q(S, T) divided by the
  settled nodes of the unprotected Q(s, t);
* posterior breach — the probability a popularity-prior adversary assigns
  to the true pair (uniform-prior breach would be 1/(f_s*f_t) for all).

Expected: compact has the lowest inflation, uniform the highest;
popularity-weighted has posterior breach closest to the Definition 2
bound under a skewed prior, while geometry-only strategies leak more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.endpoints import (
    CompactEndpointStrategy,
    PopularityWeightedStrategy,
    RingEndpointStrategy,
    UniformEndpointStrategy,
)
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.privacy import posterior_breach
from repro.core.query import ProtectionSetting
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.multi import SharedTreeProcessor
from repro.search.result import SearchStats
from repro.workloads.queries import (
    popularity_map,
    popularity_weighted_queries,
    requests_from_queries,
)

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E7 parameters."""

    grid_width: int = 30
    grid_height: int = 30
    num_queries: int = 10
    f_s: int = 3
    f_t: int = 3
    prior_skew: float = 1.0
    seed: int = 7


def run(config: Config | None = None) -> ExperimentResult:
    """Run E7 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    prior = popularity_map(network, seed=config.seed, skew=config.prior_skew)
    # Draw true queries from the popularity distribution too: people travel
    # between popular places, which is exactly what the adversary assumes.
    queries = popularity_weighted_queries(
        network, config.num_queries, prior, seed=config.seed
    )
    requests = requests_from_queries(
        queries, ProtectionSetting(config.f_s, config.f_t)
    )
    strategies = [
        UniformEndpointStrategy(),
        RingEndpointStrategy(),
        CompactEndpointStrategy(),
        PopularityWeightedStrategy(prior),
    ]
    processor = SharedTreeProcessor()
    uniform_bound = 1.0 / (config.f_s * config.f_t)

    result = ExperimentResult(
        experiment_id="E7",
        title="Fake endpoint strategies: cost inflation vs. posterior breach",
        columns=[
            "strategy",
            "cost_inflation",
            "mean_posterior_breach",
            "uniform_bound",
            "breach_excess",
        ],
        expectation=(
            "compact: lowest cost inflation. uniform: highest. "
            "popularity-weighted: posterior breach closest to 1/(f_s*f_t) "
            "under a skewed prior"
        ),
        notes=f"prior skew={config.prior_skew}; Definition 2 bound={uniform_bound:.4f}",
    )
    for strategy in strategies:
        obfuscator = PathQueryObfuscator(network, strategy=strategy, seed=config.seed)
        inflations: list[float] = []
        breaches: list[float] = []
        for request in requests:
            record = obfuscator.obfuscate_independent(request)
            base_stats = SearchStats()
            dijkstra_path(
                network,
                request.query.source,
                request.query.destination,
                stats=base_stats,
            )
            out = processor.process(
                network,
                list(record.query.sources),
                list(record.query.destinations),
            )
            inflations.append(
                out.stats.settled_nodes / max(base_stats.settled_nodes, 1)
            )
            breaches.append(
                posterior_breach(record.query, request.query, prior, prior)
            )
        mean_breach = sum(breaches) / len(breaches)
        result.rows.append(
            {
                "strategy": strategy.name,
                "cost_inflation": sum(inflations) / len(inflations),
                "mean_posterior_breach": mean_breach,
                "uniform_bound": uniform_bound,
                "breach_excess": mean_breach - uniform_bound,
            }
        )
    return result


if __name__ == "__main__":
    print(run())
