"""E15 — Parallel customization: throughput vs worker count.

PR 10's :class:`~repro.search.parallel.ParallelCustomizer` fans
per-cell clique construction out to a persistent process pool; this
experiment charts the customization rate (cells/sec) against the
worker count on one fixed network and partition.  Each parallel row is
checked byte-identical (:func:`~repro.search.overlay.dumps_overlay`)
to the serial build — parallelism must be a pure throughput knob — and
reports the one-off pool warm-up cost that
:meth:`repro.service.serving.ServingStack.warm` pays at deploy time.
The per-core CI gate (``customize_parallel_speedup_per_core`` in the
grid200 bench tier) watches the same ratio over time; at metro scale
the ``--metro`` tier reports the absolute cells/sec this experiment
trends in miniature.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.network.partition import partition_network
from repro.search.overlay import build_overlay, dumps_overlay

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E15 parameters."""

    grid_width: int = 36
    grid_height: int = 36
    cell_capacity: int = 24
    workers: list[int] = field(default_factory=lambda: [0, 2, 4])
    #: multiprocessing start method; ``None`` picks the platform
    #: default (forkserver where available).  Tests pass ``"fork"`` to
    #: keep pool warm-up off the suite's wall time.
    start_method: str | None = None
    kernel: str = "csr"
    seed: int = 15


def run(config: Config | None = None) -> ExperimentResult:
    """Run E15 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.15,
        seed=config.seed,
    )
    partition = partition_network(network, cell_capacity=config.cell_capacity)

    result = ExperimentResult(
        experiment_id="E15",
        title="Parallel customization: throughput vs worker count",
        columns=[
            "workers",
            "cells",
            "build_s",
            "cells_per_sec",
            "speedup",
            "pool_warm_ms",
            "byte_identical",
        ],
        expectation=(
            "cells/sec grows with the worker count (up to the core "
            "count), every parallel build serializes byte-identically "
            "to the serial one, and the pool warm-up stays a one-off "
            "deploy-time cost"
        ),
    )

    t0 = time.perf_counter()
    serial = build_overlay(
        network, partition=partition, kernel=config.kernel
    )
    serial_s = time.perf_counter() - t0
    serial_bytes = dumps_overlay(serial)
    cells = partition.num_cells
    result.rows.append(
        {
            "workers": 0,
            "cells": cells,
            "build_s": round(serial_s, 3),
            "cells_per_sec": round(cells / serial_s, 1) if serial_s else 0.0,
            "speedup": 1.0,
            "pool_warm_ms": 0.0,
            "byte_identical": True,
        }
    )

    from repro.search.parallel import ParallelCustomizer

    for workers in config.workers:
        if workers < 2:
            continue  # 0/1 are the serial row above
        customizer = ParallelCustomizer(
            workers, start_method=config.start_method
        )
        try:
            warm_s = customizer.warm()
            t0 = time.perf_counter()
            overlay = build_overlay(
                network, partition=partition, kernel=config.kernel,
                customizer=customizer,
            )
            build_s = time.perf_counter() - t0
        finally:
            customizer.close()
        speedup = serial_s / build_s if build_s > 0 else 0.0
        result.rows.append(
            {
                "workers": workers,
                "cells": cells,
                "build_s": round(build_s, 3),
                "cells_per_sec": (
                    round(cells / build_s, 1) if build_s else 0.0
                ),
                "speedup": round(speedup, 2),
                "pool_warm_ms": round(warm_s * 1000.0, 1),
                "byte_identical": dumps_overlay(overlay) == serial_bytes,
            }
        )

    result.notes = (
        f"{config.grid_width}x{config.grid_height} grid, cell capacity "
        f"{config.cell_capacity} ({cells} cells), kernel "
        f"{config.kernel!r}; speedups are same-machine wall ratios and "
        "depend on core count — the byte_identical column is the "
        "machine-independent claim"
    )
    return result


if __name__ == "__main__":
    print(run())
