"""E11 — The |S| vs |T| asymmetry in protection sizing (Section III-B).

At a fixed anonymity product (fixed Definition 2 breach), Lemma 1 predicts
that protection is cheap on the destination side and expensive on the
source side: every source pays a spanning tree, every destination only
stretches existing trees.  We sweep the factorizations of a fixed product
(e.g. 12 = 1x12 = 2x6 = 3x4 = ... = 12x1), measure actual server cost for
each, and check that the cost-model-driven planner
(:mod:`repro.core.planner`) ranks splits consistently with measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.planner import plan_protection
from repro.core.query import ProtectionSetting
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.search.multi import SharedTreeProcessor
from repro.workloads.queries import distance_bounded_queries, requests_from_queries

__all__ = ["Config", "run"]


def _factorizations(product: int) -> list[tuple[int, int]]:
    return [
        (f_s, product // f_s)
        for f_s in range(1, product + 1)
        if product % f_s == 0
    ]


@dataclass(slots=True)
class Config:
    """E11 parameters."""

    grid_width: int = 30
    grid_height: int = 30
    num_queries: int = 8
    anonymity_product: int = 12
    min_query_distance: float = 6.0
    max_query_distance: float = 12.0
    seed: int = 11


def run(config: Config | None = None) -> ExperimentResult:
    """Run E11 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    queries = distance_bounded_queries(
        network,
        config.num_queries,
        config.min_query_distance,
        config.max_query_distance,
        seed=config.seed,
    )
    processor = SharedTreeProcessor()
    result = ExperimentResult(
        experiment_id="E11",
        title=(
            f"Cost of (f_S, f_T) factorizations at fixed anonymity "
            f"{config.anonymity_product} (breach "
            f"{1.0 / config.anonymity_product:.4f})"
        ),
        columns=["f_s", "f_t", "measured_settled", "trees_grown", "planner_rank"],
        expectation=(
            "measured cost grows with f_S and is ~flat in f_T, so at fixed "
            "breach the cheapest split is source-light/destination-heavy; "
            "the Lemma 1 planner's ranking agrees with measurement"
        ),
    )
    # Planner prediction for a representative query of the workload.
    plans = plan_protection(
        network,
        queries[0],
        max_breach=1.0 / config.anonymity_product,
        max_side=config.anonymity_product,
        seed=config.seed,
    )
    planner_rank = {
        (p.setting.f_s, p.setting.f_t): rank
        for rank, p in enumerate(plans, start=1)
    }
    for f_s, f_t in _factorizations(config.anonymity_product):
        setting = ProtectionSetting(f_s, f_t)
        requests = requests_from_queries(queries, setting)
        obfuscator = PathQueryObfuscator(network, seed=config.seed)
        settled = 0
        trees = 0
        for request in requests:
            record = obfuscator.obfuscate_independent(request)
            out = processor.process(
                network, list(record.query.sources), list(record.query.destinations)
            )
            settled += out.stats.settled_nodes
            trees += out.searches
        result.rows.append(
            {
                "f_s": f_s,
                "f_t": f_t,
                "measured_settled": settled,
                "trees_grown": trees,
                "planner_rank": planner_rank.get((f_s, f_t), "-"),
            }
        )
    best = plans[0].setting
    result.notes = (
        f"planner recommends (f_s={best.f_s}, f_t={best.f_t}) "
        f"predicted cost {plans[0].predicted_cost:.1f} area units"
    )
    return result


if __name__ == "__main__":
    print(run())
