"""Experiment suite reproducing the paper's quantitative claims.

One module per experiment (see DESIGN.md section 3 for the index); each
exposes a ``Config`` dataclass and ``run(config=None) -> ExperimentResult``.
``run_all`` executes the whole suite, which is what EXPERIMENTS.md records.
"""

from repro.experiments.harness import ExperimentResult, run_all
from repro.experiments import (
    e1_breach,
    e2_processing_cost,
    e3_mechanism_comparison,
    e4_independent_vs_shared,
    e5_collusion,
    e6_scalability,
    e7_endpoint_strategies,
    e8_clustering,
    e9_cost_model,
    e10_batching_window,
    e11_protection_sizing,
    e12_linkage,
)

__all__ = [
    "ExperimentResult",
    "run_all",
    "e1_breach",
    "e2_processing_cost",
    "e3_mechanism_comparison",
    "e4_independent_vs_shared",
    "e5_collusion",
    "e6_scalability",
    "e7_endpoint_strategies",
    "e8_clustering",
    "e9_cost_model",
    "e10_batching_window",
    "e11_protection_sizing",
    "e12_linkage",
]
