"""E12 — Repeated-query linkage attack and sticky decoys (Section II).

Section II warns that "the server can accumulate all the path queries
received to learn where individuals travel".  We model the worst case: a
user repeats the same trip (a commute) k times and the server can link
the k obfuscated observations.  With independently re-drawn fakes the
intersection of candidate sets collapses onto the true pair within a few
observations; with sticky (deterministic per-query) decoys the candidate
sets are a fixpoint and Definition 2's anonymity survives indefinitely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attacks import LinkageAttack
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ClientRequest, ProtectionSetting
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.workloads.queries import uniform_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E12 parameters."""

    grid_width: int = 30
    grid_height: int = 30
    num_users: int = 10
    repeat_counts: list[int] = field(default_factory=lambda: [1, 2, 3, 5, 10])
    f_s: int = 4
    f_t: int = 4
    seed: int = 12


def _mean_breach_after_repeats(
    network, queries, setting, repeats: int, sticky: bool, seed: int
) -> tuple[float, float]:
    """Returns (mean breach, fraction of users fully exposed)."""
    attack = LinkageAttack()
    breaches = []
    exposed = 0
    for user_id, query in enumerate(queries):
        obfuscator = PathQueryObfuscator(network, seed=seed)
        request = ClientRequest(f"u{user_id}", query, setting)
        observations = []
        for _ in range(repeats):
            key = f"u{user_id}" if sticky else None
            observations.append(
                obfuscator.obfuscate_independent(request, sticky_key=key).query
            )
        outcome = attack.intersect(observations)
        breaches.append(outcome.breach_probability)
        exposed += outcome.exposed
    return sum(breaches) / len(breaches), exposed / len(queries)


def run(config: Config | None = None) -> ExperimentResult:
    """Run E12 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    queries = uniform_queries(network, config.num_users, seed=config.seed)
    setting = ProtectionSetting(config.f_s, config.f_t)
    bound = setting.target_breach

    result = ExperimentResult(
        experiment_id="E12",
        title="Linkage attack on repeated queries: fresh vs. sticky decoys",
        columns=[
            "observations",
            "fresh_breach",
            "fresh_exposed",
            "sticky_breach",
            "sticky_exposed",
        ],
        expectation=(
            "with fresh fakes the intersection collapses within a few "
            "observations (breach -> 1); sticky decoys hold the Definition 2 "
            f"bound {bound:.4f} for any number of observations"
        ),
    )
    for repeats in config.repeat_counts:
        fresh_breach, fresh_exposed = _mean_breach_after_repeats(
            network, queries, setting, repeats, sticky=False, seed=config.seed
        )
        sticky_breach, sticky_exposed = _mean_breach_after_repeats(
            network, queries, setting, repeats, sticky=True, seed=config.seed
        )
        result.rows.append(
            {
                "observations": repeats,
                "fresh_breach": fresh_breach,
                "fresh_exposed": fresh_exposed,
                "sticky_breach": sticky_breach,
                "sticky_exposed": sticky_exposed,
            }
        )
    return result


if __name__ == "__main__":
    print(run())
