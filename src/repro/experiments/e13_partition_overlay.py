"""E13 — Partition overlay: cut, overlay size, and customization (extension).

The monolithic engines rebuild their whole preprocessing artifact when a
single weight changes.  This experiment characterizes the CRP-style
partition-overlay alternative (:mod:`repro.search.overlay`) across cell
capacities: how the cut and boundary shrink as cells grow, what the
overlay costs to customize from scratch, how little a *single-cell*
re-customization after a traffic re-weight costs in comparison, and
what the two-phase query pays versus plain Dijkstra — the trade-off
surface a deployment tunes when picking a cell size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.network.partition import partition_network
from repro.search.dijkstra import dijkstra_path
from repro.search.overlay import build_overlay
from repro.search.result import SearchStats

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E13 parameters."""

    grid_width: int = 30
    grid_height: int = 30
    cell_capacities: list[int] = field(default_factory=lambda: [32, 128, 512])
    num_queries: int = 12
    seed: int = 13


def run(config: Config | None = None) -> ExperimentResult:
    """Run E13 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1,
        seed=config.seed,
    )
    rng = random.Random(config.seed)
    nodes = list(network.nodes())
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(config.num_queries)]

    dijkstra_stats = SearchStats()
    for s, t in pairs:
        dijkstra_path(network, s, t, stats=dijkstra_stats)

    result = ExperimentResult(
        experiment_id="E13",
        title="Partition overlay: cut size, overlay size, customization cost",
        columns=[
            "capacity",
            "cells",
            "cut_edges",
            "boundary_nodes",
            "clique_arcs",
            "customize_settled",
            "recustomize_settled",
            "overlay_settled",
            "dijkstra_settled",
        ],
        expectation=(
            "bigger cells mean fewer cut edges and boundary nodes; a "
            "single-cell recustomization after a re-weight costs a small "
            "fraction of full customization; two-phase queries settle "
            "fewer nodes than plain Dijkstra"
        ),
    )
    for capacity in config.cell_capacities:
        partition = partition_network(network, cell_capacity=capacity)
        overlay = build_overlay(network, partition=partition, kernel="csr")

        query_stats = SearchStats()
        for s, t in pairs:
            overlay.route(s, t, stats=query_stats)

        # Re-weight one intra-cell edge, recustomize only its cell, then
        # restore the weight so every row measures the same network.
        recustomize_settled = 0
        for u, v, w in list(network.edges()):
            touched = overlay.touched_cells([(u, v)])
            if touched:
                network.add_edge(u, v, w * 2.0)
                refreshed = overlay.recustomized(touched)
                recustomize_settled = refreshed.customize_stats.settled_nodes
                network.add_edge(u, v, w)
                break

        result.rows.append(
            {
                "capacity": capacity,
                "cells": partition.num_cells,
                "cut_edges": partition.num_cut_edges,
                "boundary_nodes": partition.num_boundary_nodes,
                "clique_arcs": overlay.num_clique_arcs,
                "customize_settled": overlay.customize_stats.settled_nodes,
                "recustomize_settled": recustomize_settled,
                "overlay_settled": query_stats.settled_nodes,
                "dijkstra_settled": dijkstra_stats.settled_nodes,
            }
        )
    result.notes = (
        f"{config.num_queries} uniform point queries on a "
        f"{config.grid_width}x{config.grid_height} grid; recustomize "
        "refreshes the single cell containing one re-weighted edge"
    )
    return result


if __name__ == "__main__":
    print(run())
