"""E10 — Batching window: latency vs. privacy vs. server cost (extension).

The paper's shared obfuscated path queries presuppose that several
requests are in the obfuscator's hands at once (Section IV).  Online,
that means batching: a window of W seconds gathers arrivals before
obfuscating.  This extension experiment sweeps W under Poisson arrivals
and reports the three-way trade-off — the operational knob a deployed
OPAQUE service would actually tune.

Expected shape: longer windows raise mean latency ~linearly (half the
window on average), lower per-user breach (more real endpoints per shared
query), and reduce total server work (more sharing per window).

Each window is additionally run twice through one
:class:`~repro.service.serving.ServingStack`: a cold pass (empty caches)
and a warm pass replaying the same traffic, showing the serving layer
turning repeated workloads into result-cache hits (``settled_warm``
collapses toward 0).

The cross-session columns replay each window's server-visible
obfuscated stream through the ``coalesce_engine`` twice more: once with
per-session dispatch (every query pays its own bucket pass) and once
through the :class:`~repro.service.serving.QueryCoalescer`, which
merges all of the window's concurrent queries into one shared union
kernel pass.  Hotspot destinations repeat across sessions, so the union
pass shares their backward sweeps and ``settled_coalesced`` drops below
``settled_solo`` while the per-session answers stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.service.cache import PreprocessingCache
from repro.service.serving import CoalesceConfig, ServingConfig, ServingStack
from repro.service.simulator import BatchingObfuscationService, poisson_arrivals
from repro.workloads.queries import hotspot_queries, requests_from_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E10 parameters."""

    grid_width: int = 30
    grid_height: int = 30
    num_requests: int = 32
    arrival_rate: float = 2.0  # requests per second
    windows: list[float] = field(default_factory=lambda: [0.5, 1.0, 2.0, 4.0, 8.0])
    f_s: int = 3
    f_t: int = 3
    num_hotspots: int = 2
    engine: str = "dijkstra"
    #: engine for the cross-session coalescing columns (a bucket
    #: many-to-many engine, so union passes share per-endpoint sweeps)
    coalesce_engine: str = "ch-csr"
    seed: int = 10


def run(config: Config | None = None) -> ExperimentResult:
    """Run E10 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    queries = hotspot_queries(
        network, config.num_requests, num_hotspots=config.num_hotspots,
        seed=config.seed,
    )
    result = ExperimentResult(
        experiment_id="E10",
        title="Batching window vs. latency, privacy and server cost (extension)",
        columns=[
            "window_s",
            "mean_latency_s",
            "p95_latency_s",
            "mean_breach",
            "obfuscated_queries",
            "settled_cold",
            "settled_warm",
            "warm_hit_rate",
            "settled_solo",
            "settled_coalesced",
            "coalesced_queries",
        ],
        expectation=(
            "latency grows ~linearly with the window; breach and server "
            "cost fall as more requests share each window; the warm pass "
            "serves repeated queries from cache (settled_warm << cold); "
            "coalescing the window's concurrent queries into one union "
            "pass never exceeds per-session dispatch "
            "(settled_coalesced <= settled_solo)"
        ),
    )
    requests = requests_from_queries(
        queries, ProtectionSetting(config.f_s, config.f_t)
    )
    arrivals = poisson_arrivals(
        requests, rate=config.arrival_rate, seed=config.seed
    )
    # One preprocessing build (e.g. ch-csr contraction) shared by every
    # window's solo and coalesced replays.
    preprocessing = PreprocessingCache()
    for window in config.windows:
        # Cold pass: fresh serving stack, every query pays full search.
        stack = ServingStack.from_config(
            network,
            ServingConfig(engine=config.engine),
        )
        system = OpaqueSystem(
            network, mode="shared", serving=stack, seed=config.seed
        )
        service = BatchingObfuscationService(system, window=window)
        _results, report = service.run(arrivals)
        # The server-visible stream of this window sweep — replayed
        # below as "concurrent sessions" for the coalescing columns.
        observed = list(stack.server.observed_queries)

        # Warm pass: same stack, same traffic (a fresh same-seed system
        # rebuilds identical obfuscated queries) — cache hits replace work.
        warm_system = OpaqueSystem(
            network, mode="shared", serving=stack, seed=config.seed
        )
        warm_service = BatchingObfuscationService(warm_system, window=window)
        _warm_results, warm_report = warm_service.run(arrivals)
        stack.close()

        # Cross-session columns: per-session dispatch vs one coalesced
        # union pass over the same stream, on the bucket engine.
        with ServingStack.from_config(
            network,
            ServingConfig(engine=config.coalesce_engine),
            preprocessing_cache=preprocessing,
        ) as solo_stack:
            solo_stack.answer_batch(observed)
            settled_solo = solo_stack.server.counters.stats.settled_nodes
        with ServingStack.from_config(
            network,
            ServingConfig(engine=config.coalesce_engine, coalesce=CoalesceConfig(
                max_batch=max(len(observed), 1), max_wait_s=60.0
            )),
            preprocessing_cache=preprocessing,
        ) as co_stack:
            co_stack.answer_batch(observed)
            settled_coalesced = co_stack.server.counters.stats.settled_nodes
            coalesced_queries = co_stack.server.counters.coalesced_queries

        # Latency/breach/cost columns come from the canonical report
        # shape (ServiceReport.to_dict) so key names stay aligned with
        # what the gateway's /v1/metrics and serve-replay emit.
        report_doc = report.to_dict()
        warm_doc = warm_report.to_dict()
        warm_total = warm_doc["obfuscated_queries"]
        result.rows.append(
            {
                "window_s": window,
                "mean_latency_s": report_doc["mean_latency_s"],
                "p95_latency_s": report_doc["p95_latency_s"],
                "mean_breach": report_doc["mean_breach"],
                "obfuscated_queries": report_doc["obfuscated_queries"],
                "settled_cold": report_doc["server_settled_nodes"],
                "settled_warm": warm_doc["server_settled_nodes"],
                "warm_hit_rate": (
                    warm_doc["cached_queries"] / warm_total
                    if warm_total
                    else 0.0
                ),
                "settled_solo": settled_solo,
                "settled_coalesced": settled_coalesced,
                "coalesced_queries": coalesced_queries,
            }
        )
    return result


if __name__ == "__main__":
    print(run())
