"""E4 — Independent vs. shared obfuscated path queries (Section III-C).

Sweep the number of concurrent requests k in a geographically co-located
batch.  Independent obfuscation pays one obfuscated query per request, so
server cost grows linearly with k; a shared query amortizes one Q(S, T)
over all k requests, and every member additionally hides among the other
members' *real* endpoints, so per-user breach drops as k grows while the
server does less work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import ClientRequest, PathQuery, ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.network.spatial import GridSpatialIndex
from repro.workloads.queries import hotspot_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E4 parameters."""

    grid_width: int = 40
    grid_height: int = 40
    k_values: list[int] = field(default_factory=lambda: [1, 2, 4, 8, 16])
    f_s: int = 3
    f_t: int = 3
    num_hotspots: int = 2
    seed: int = 4


def _requests(config: Config, network, k: int) -> list[ClientRequest]:
    queries = hotspot_queries(
        network,
        k,
        num_hotspots=config.num_hotspots,
        seed=config.seed,
        index=GridSpatialIndex(network),
    )
    setting = ProtectionSetting(config.f_s, config.f_t)
    return [
        ClientRequest(f"user-{i}", PathQuery(q.source, q.destination), setting)
        for i, q in enumerate(queries)
    ]


def run(config: Config | None = None) -> ExperimentResult:
    """Run E4 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    result = ExperimentResult(
        experiment_id="E4",
        title="Independent vs. shared obfuscation as batch size k grows",
        columns=[
            "k",
            "indep_settled",
            "shared_settled",
            "indep_queries",
            "shared_queries",
            "indep_breach",
            "shared_breach",
            "indep_traffic",
            "shared_traffic",
        ],
        expectation=(
            "independent cost grows ~linearly in k; shared grows sublinearly "
            "(one query, larger sets); shared per-user breach <= independent "
            "breach for k >= f (real endpoints add anonymity for free)"
        ),
    )
    for k in config.k_values:
        row: dict = {"k": k}
        for mode, prefix in (("independent", "indep"), ("shared", "shared")):
            system = OpaqueSystem(network, mode=mode, seed=config.seed)
            requests = _requests(config, network, k)
            system.submit(requests)
            report = system.last_report
            assert report is not None
            row[f"{prefix}_settled"] = report.server_stats.settled_nodes
            row[f"{prefix}_queries"] = len(report.records)
            row[f"{prefix}_breach"] = report.mean_breach
            row[f"{prefix}_traffic"] = report.traffic.server_side_bytes
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run())
