"""E3 — Mechanism comparison (Section II / Figure 2 as a table).

One row per privacy technique, averaged over a shared workload: does the
user get the exact requested path, how displaced is the result otherwise,
what breach probability does the server-side observation admit, and what
does the protection cost in server work and traffic.

Expected outcome (the paper's qualitative claims): direct is exact but
breach 1; landmark/cloaking are private but return irrelevant paths;
plain obfuscation is exact and private but pays one full search per fake;
OPAQUE is exact, private, and cheaper than plain obfuscation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    CloakingMechanism,
    DirectMechanism,
    LandmarkMechanism,
    OpaqueMechanism,
    PlainObfuscationMechanism,
    PrivacyMechanism,
)
from repro.core.query import ProtectionSetting
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.workloads.queries import (
    distance_bounded_queries,
    requests_from_queries,
    uniform_queries,
)

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E3 parameters."""

    grid_width: int = 30
    grid_height: int = 30
    num_queries: int = 12
    f_s: int = 3
    f_t: int = 3
    num_landmarks: int = 12
    plain_fakes: int = 8  # matches f_s*f_t - 1 anonymity of OPAQUE
    cloaking_cell: float = 4.0
    min_query_distance: float = 6.0
    max_query_distance: float = 14.0
    seed: int = 3


def _mechanisms(config: Config, network) -> list[PrivacyMechanism]:
    landmarks = [
        q.source for q in uniform_queries(network, config.num_landmarks, seed=99)
    ]
    return [
        DirectMechanism(network),
        LandmarkMechanism(network, landmarks),
        CloakingMechanism(network, cell_size=config.cloaking_cell, seed=config.seed),
        PlainObfuscationMechanism(
            network, num_fakes=config.plain_fakes, seed=config.seed
        ),
        OpaqueMechanism(network, seed=config.seed),
    ]


def run(config: Config | None = None) -> ExperimentResult:
    """Run E3 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    queries = distance_bounded_queries(
        network,
        config.num_queries,
        config.min_query_distance,
        config.max_query_distance,
        seed=config.seed,
    )
    requests = requests_from_queries(
        queries, ProtectionSetting(config.f_s, config.f_t)
    )
    result = ExperimentResult(
        experiment_id="E3",
        title="Privacy mechanism comparison (exactness / privacy / overhead)",
        columns=[
            "mechanism",
            "exact_rate",
            "mean_displacement",
            "mean_breach",
            "settled_nodes",
            "candidate_paths",
            "traffic_bytes",
        ],
        expectation=(
            "direct: exact, breach 1. landmark/cloaking: private, irrelevant "
            "results. plain obfuscation: exact+private, highest cost. OPAQUE: "
            "exact+private, cost between direct and plain obfuscation"
        ),
    )
    for mechanism in _mechanisms(config, network):
        outcomes = [mechanism.answer(r) for r in requests]
        n = len(outcomes)
        finite_displacements = [
            o.endpoint_displacement
            for o in outcomes
            if o.endpoint_displacement != float("inf")
        ]
        result.rows.append(
            {
                "mechanism": mechanism.name,
                "exact_rate": sum(o.exact for o in outcomes) / n,
                "mean_displacement": (
                    sum(finite_displacements) / len(finite_displacements)
                    if finite_displacements
                    else float("inf")
                ),
                "mean_breach": sum(o.breach for o in outcomes) / n,
                "settled_nodes": sum(o.server_stats.settled_nodes for o in outcomes),
                "candidate_paths": sum(o.candidate_paths for o in outcomes),
                "traffic_bytes": sum(o.traffic_bytes for o in outcomes),
            }
        )
    return result


if __name__ == "__main__":
    print(run())
