"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value) -> str:
    """Render one cell: floats to 4 significant digits, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Mapping[str, object]]) -> str:
    """Aligned text table; missing cells render as ``-``."""
    rendered = [
        [format_value(row.get(col, "-")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * w for w in widths)
    lines = [header, separator]
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)
