"""E6 — Scalability with network size (Section III-B's area argument).

Run the same relative workload on grids of increasing size and compare
the MSMD processors.  Because the search cost is bounded by the area the
spanning trees touch, cost grows with the (scaled) query radius for every
processor, and the processor ranking (shared <= side-selecting <= naive)
is preserved at every size.

The Contraction Hierarchies columns show how a preprocessing-based engine
changes the scalability picture: per-query settled counts grow barely at
all with network size (the hierarchy absorbs the area term of Lemma 1),
so its speedup over naive *widens* as the map grows — the regime a
production service with millions of users operates in.  One-time
contraction cost is reported separately (``ch_prep_settled`` counts
witness-search settles) rather than folded into query cost.

The ``csr_settled`` / ``ch_csr_settled`` columns run the flat-array
kernel engines (:mod:`repro.search.kernels`) on the same queries: their
settled counts track the dict-based ``shared_settled`` / ``ch_settled``
columns at every size, demonstrating that the CSR port accelerates the
constant factor without changing the algorithmic cost the paper models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ProtectionSetting
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.search.ch import CHManyToManyProcessor, contract_network
from repro.search.kernels import (
    CSRCHManyToManyProcessor,
    CSRHierarchy,
    CSRSharedTreeProcessor,
)
from repro.search.multi import (
    NaivePairwiseProcessor,
    SharedTreeProcessor,
    SideSelectingProcessor,
)
from repro.workloads.queries import distance_bounded_queries, requests_from_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E6 parameters."""

    grid_sizes: list[int] = field(default_factory=lambda: [20, 30, 40, 50])
    num_queries: int = 6
    f_s: int = 4
    f_t: int = 2  # |T| < |S| so side selection has something to exploit
    relative_min_distance: float = 0.25  # fraction of grid side
    relative_max_distance: float = 0.5
    seed: int = 6


def run(config: Config | None = None) -> ExperimentResult:
    """Run E6 and return its table."""
    if config is None:
        config = Config()
    processors = [
        NaivePairwiseProcessor(),
        SharedTreeProcessor(),
        SideSelectingProcessor(),
    ]
    result = ExperimentResult(
        experiment_id="E6",
        title="Server cost vs. network size (all MSMD processors)",
        columns=[
            "grid",
            "nodes",
            "naive_settled",
            "shared_settled",
            "side_settled",
            "ch_settled",
            "csr_settled",
            "ch_csr_settled",
            "shared_speedup",
            "side_speedup",
            "ch_speedup",
            "ch_prep_settled",
        ],
        expectation=(
            "costs grow with network size at fixed relative query radius; "
            "ranking shared <= side-selecting <= naive holds at every size; "
            "with |T| < |S| side selection beats plain shared; CH query "
            "cost stays near-flat so its speedup widens with size; the CSR "
            "kernel columns track their dict counterparts at every size"
        ),
    )
    for size in config.grid_sizes:
        network = grid_network(size, size, perturbation=0.1, seed=config.seed)
        queries = distance_bounded_queries(
            network,
            config.num_queries,
            config.relative_min_distance * size,
            config.relative_max_distance * size,
            seed=config.seed,
        )
        requests = requests_from_queries(
            queries, ProtectionSetting(config.f_s, config.f_t)
        )
        obfuscator = PathQueryObfuscator(network, seed=config.seed)
        records = [obfuscator.obfuscate_independent(r) for r in requests]
        contracted = contract_network(network)
        sized_processors = processors + [
            CHManyToManyProcessor(graph=contracted),
            CSRSharedTreeProcessor(),
            CSRCHManyToManyProcessor(hierarchy=CSRHierarchy(contracted)),
        ]
        settled = {}
        for processor in sized_processors:
            total = 0
            for record in records:
                out = processor.process(
                    network,
                    list(record.query.sources),
                    list(record.query.destinations),
                )
                total += out.stats.settled_nodes
            settled[processor.name] = total
        result.rows.append(
            {
                "grid": f"{size}x{size}",
                "nodes": network.num_nodes,
                "naive_settled": settled["naive"],
                "shared_settled": settled["shared"],
                "side_settled": settled["side-selecting"],
                "ch_settled": settled["ch"],
                "csr_settled": settled["dijkstra-csr"],
                "ch_csr_settled": settled["ch-csr"],
                "shared_speedup": settled["naive"] / max(settled["shared"], 1),
                "side_speedup": settled["naive"] / max(settled["side-selecting"], 1),
                "ch_speedup": settled["naive"] / max(settled["ch"], 1),
                "ch_prep_settled": contracted.stats.witness_settled,
            }
        )
    return result


if __name__ == "__main__":
    print(run())
