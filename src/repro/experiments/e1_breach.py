"""E1 — Breach probability vs. obfuscation power (Definition 2).

For each protection setting ``(f_S, f_T)`` we obfuscate a workload of
queries independently and let the Definition 2 adversary (uniform guess
over the candidate pairs) attack each obfuscated query many times.  The
empirical breach rate must match the analytic ``1/(f_S * f_T)`` — the
paper's running example is ``1/(2*3) = 1/6``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attacks import empirical_breach_rate
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.privacy import breach_probability
from repro.core.query import ProtectionSetting
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.workloads.queries import requests_from_queries, uniform_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E1 parameters."""

    grid_width: int = 30
    grid_height: int = 30
    num_queries: int = 20
    settings: list[tuple[int, int]] = field(
        default_factory=lambda: [(1, 1), (2, 2), (2, 3), (3, 3), (4, 4), (5, 5)]
    )
    trials_per_record: int = 200
    seed: int = 1


def run(config: Config | None = None) -> ExperimentResult:
    """Run E1 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    queries = uniform_queries(network, config.num_queries, seed=config.seed)
    result = ExperimentResult(
        experiment_id="E1",
        title="Breach probability vs. obfuscation power (f_S, f_T)",
        columns=[
            "f_s",
            "f_t",
            "pairs",
            "analytic_breach",
            "empirical_breach",
            "abs_error",
        ],
        expectation=(
            "empirical ~= 1/(f_S*f_T); monotonically decreasing in both sizes "
            "(paper example: f=(2,3) -> 1/6)"
        ),
    )
    for f_s, f_t in config.settings:
        setting = ProtectionSetting(f_s, f_t)
        requests = requests_from_queries(queries, setting)
        obfuscator = PathQueryObfuscator(network, seed=config.seed)
        records = [obfuscator.obfuscate_independent(r) for r in requests]
        analytic = sum(breach_probability(r.query) for r in records) / len(records)
        empirical = empirical_breach_rate(
            records, trials_per_record=config.trials_per_record
        )
        result.rows.append(
            {
                "f_s": f_s,
                "f_t": f_t,
                "pairs": f_s * f_t,
                "analytic_breach": analytic,
                "empirical_breach": empirical,
                "abs_error": abs(analytic - empirical),
            }
        )
    return result


if __name__ == "__main__":
    print(run())
