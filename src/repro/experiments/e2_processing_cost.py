"""E2 — Server processing cost vs. |T| (Lemma 1 and Section III-B).

Fix |S| and sweep |T|.  The naive pairwise processor pays one full search
per (s, t) pair, so its cost grows linearly in |T|; the paper's shared
SSMD trees pay only for the furthest destination, so their cost is nearly
flat once |T| >= 2.  The Lemma 1 analytic estimate (normalized to settled
nodes via a single fitted constant) should track the shared curve.

The ``ch_settled`` column goes beyond the paper: the bucket-based
Contraction Hierarchies processor (:mod:`repro.search.ch.manytomany`)
answers the same queries over a preprocessed hierarchy, settling a
near-constant number of nodes per endpoint — its curve sits far below the
Lemma 1 disc-area prediction because preprocessing already paid for the
long-range structure.  Preprocessing cost is excluded (paid once per
network, amortized over the server's lifetime).

The ``csr_settled`` / ``ch_csr_settled`` columns are a kernel-parity
check: the flat-array engines (:mod:`repro.search.kernels`) run the same
algorithms over a CSR snapshot, so their settled counts must track the
dict-based columns — the CSR port changes per-node constants (wall
clock), never the algorithmic work the paper's cost model predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.endpoints import CompactEndpointStrategy
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ProtectionSetting
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.network.storage import PagedNetwork
from repro.search.ch import CHManyToManyProcessor, contract_network
from repro.search.cost_model import lemma1_cost_estimate
from repro.search.kernels import (
    CSRCHManyToManyProcessor,
    CSRHierarchy,
    CSRSharedTreeProcessor,
)
from repro.search.multi import NaivePairwiseProcessor, SharedTreeProcessor
from repro.workloads.queries import distance_bounded_queries, requests_from_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E2 parameters."""

    grid_width: int = 40
    grid_height: int = 40
    num_queries: int = 8
    f_s: int = 2
    f_t_values: list[int] = field(default_factory=lambda: [1, 2, 3, 4, 6, 8])
    min_query_distance: float = 8.0
    max_query_distance: float = 16.0
    page_capacity: int = 32
    buffer_capacity: int = 16
    seed: int = 2


def run(config: Config | None = None) -> ExperimentResult:
    """Run E2 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    queries = distance_bounded_queries(
        network,
        config.num_queries,
        config.min_query_distance,
        config.max_query_distance,
        seed=config.seed,
    )
    result = ExperimentResult(
        experiment_id="E2",
        title="Server cost vs. |T| at fixed |S| (naive vs. shared SSMD)",
        columns=[
            "f_t",
            "naive_settled",
            "shared_settled",
            "csr_settled",
            "ch_settled",
            "ch_csr_settled",
            "naive_faults",
            "shared_faults",
            "speedup",
            "ch_speedup",
            "lemma1_estimate",
        ],
        expectation=(
            "naive cost grows ~linearly in |T|; shared cost bounded by the "
            "furthest destination (near flat); speedup widens with |T|; "
            "CH pays one bounded sweep per endpoint, so it stays well below "
            "naive at every |T| (preprocessing paid once, excluded); the "
            "CSR kernel columns track their dict counterparts (same "
            "algorithm on flat arrays)"
        ),
    )
    naive = NaivePairwiseProcessor()
    shared = SharedTreeProcessor()
    contracted = contract_network(network)
    ch = CHManyToManyProcessor(graph=contracted)
    csr_shared = CSRSharedTreeProcessor()
    ch_csr = CSRCHManyToManyProcessor(hierarchy=CSRHierarchy(contracted))
    for f_t in config.f_t_values:
        setting = ProtectionSetting(config.f_s, f_t)
        requests = requests_from_queries(queries, setting)
        obfuscator = PathQueryObfuscator(
            network, strategy=CompactEndpointStrategy(), seed=config.seed
        )
        records = [obfuscator.obfuscate_independent(r) for r in requests]

        totals = {"naive": [0, 0], "shared": [0, 0]}
        ch_settled = 0
        csr_settled = 0
        ch_csr_settled = 0
        lemma1_total = 0.0
        for record in records:
            sources = list(record.query.sources)
            destinations = list(record.query.destinations)
            for key, processor in (("naive", naive), ("shared", shared)):
                paged = PagedNetwork(
                    network,
                    page_capacity=config.page_capacity,
                    buffer_capacity=config.buffer_capacity,
                )
                out = processor.process(paged, sources, destinations)
                totals[key][0] += out.stats.settled_nodes
                totals[key][1] += out.stats.page_faults
            ch_out = ch.process(network, sources, destinations)
            ch_settled += ch_out.stats.settled_nodes
            csr_out = csr_shared.process(network, sources, destinations)
            csr_settled += csr_out.stats.settled_nodes
            ch_csr_out = ch_csr.process(network, sources, destinations)
            ch_csr_settled += ch_csr_out.stats.settled_nodes
            lemma1_total += lemma1_cost_estimate(network, sources, destinations)
        naive_settled, naive_faults = totals["naive"]
        shared_settled, shared_faults = totals["shared"]
        result.rows.append(
            {
                "f_t": f_t,
                "naive_settled": naive_settled,
                "shared_settled": shared_settled,
                "csr_settled": csr_settled,
                "ch_settled": ch_settled,
                "ch_csr_settled": ch_csr_settled,
                "naive_faults": naive_faults,
                "shared_faults": shared_faults,
                "speedup": naive_settled / max(shared_settled, 1),
                "ch_speedup": naive_settled / max(ch_settled, 1),
                "lemma1_estimate": lemma1_total,
            }
        )
    return result


if __name__ == "__main__":
    print(run())
