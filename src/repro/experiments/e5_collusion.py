"""E5 — Collusion resistance: independent vs. shared (Section III-C).

The paper motivates shared obfuscated path queries partly "to enhance
privacy protection against collusion attacks".  We attack one victim
hidden in (a) an independent obfuscated query and (b) a shared query over
k participants, while the adversary (i) knows the obfuscator's fake pool
and (ii) recruits m of the other participants as colluders.

Expected shape: with the fake pool compromised, the independent query
collapses to breach 1 immediately (every decoy is strippable); the shared
query's breach degrades gracefully as 1/((k-m)(k-m)) because the other
members' real endpoints cannot be stripped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attacks import CollusionAttack
from repro.core.obfuscator import PathQueryObfuscator
from repro.core.query import ProtectionSetting
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.workloads.queries import requests_from_queries, uniform_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E5 parameters."""

    grid_width: int = 30
    grid_height: int = 30
    num_participants: int = 8
    colluder_counts: list[int] = field(default_factory=lambda: [0, 1, 2, 4, 6])
    f_s: int = 8
    f_t: int = 8
    seed: int = 5


def run(config: Config | None = None) -> ExperimentResult:
    """Run E5 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    queries = uniform_queries(network, config.num_participants, seed=config.seed)
    setting = ProtectionSetting(config.f_s, config.f_t)
    requests = requests_from_queries(queries, setting)
    victim = requests[0]

    obfuscator = PathQueryObfuscator(network, seed=config.seed)
    independent_record = obfuscator.obfuscate_independent(victim)
    shared_record = obfuscator.obfuscate_shared(requests)

    result = ExperimentResult(
        experiment_id="E5",
        title="Collusion attack: breach vs. number of colluders m",
        columns=[
            "m",
            "indep_breach_no_pool",
            "indep_breach_pool",
            "shared_breach_no_pool",
            "shared_breach_pool",
            "shared_exposed",
        ],
        expectation=(
            "fake-pool compromise makes independent breach jump to 1 for any "
            "m; shared breach degrades only as 1/((k-m)^2) and stays < 1 "
            "until all other members collude"
        ),
    )
    other_users = [r.user for r in requests[1:]]
    for m in config.colluder_counts:
        colluders = other_users[:m]
        row: dict = {"m": m}
        for pool, suffix in ((False, "no_pool"), (True, "pool")):
            attack = CollusionAttack(colluding_users=colluders, knows_fake_pool=pool)
            # Against the independent record the colluders are not members,
            # so only the fake-pool channel applies.
            indep_attack = CollusionAttack(colluding_users=(), knows_fake_pool=pool)
            indep = indep_attack.attack(independent_record, victim)
            shared = attack.attack(shared_record, victim)
            row[f"indep_breach_{suffix}"] = indep.breach_probability
            row[f"shared_breach_{suffix}"] = shared.breach_probability
            if pool:
                row["shared_exposed"] = shared.exposed
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run())
