"""E9 — Validating the O(||s,t||^2) point-query cost model (Section III-B).

The paper estimates a Dijkstra search's cost as the area of the disc its
spanning tree covers: ``O(||s,t||^2)``.  We sample queries across distance
bands, measure settled nodes per query, and check that (a) cost grows
superlinearly with distance and (b) a least-squares fit of
``settled = a * distance^2`` explains most of the variance (high R^2 on
grid-like networks, where node density is uniform).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.search.dijkstra import dijkstra_path
from repro.search.result import SearchStats
from repro.workloads.queries import distance_bounded_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E9 parameters."""

    grid_width: int = 50
    grid_height: int = 50
    queries_per_band: int = 10
    distance_bands: list[tuple[float, float]] = field(
        default_factory=lambda: [(2, 4), (4, 8), (8, 12), (12, 18), (18, 26), (26, 34)]
    )
    seed: int = 9


def _quadratic_fit(
    distances: list[float], costs: list[float]
) -> tuple[float, float]:
    """Least-squares fit of ``cost = a * d^2``; returns ``(a, r_squared)``."""
    xs = [d * d for d in distances]
    sxx = sum(x * x for x in xs)
    sxy = sum(x * y for x, y in zip(xs, costs))
    a = sxy / sxx if sxx > 0 else 0.0
    mean_cost = sum(costs) / len(costs)
    ss_tot = sum((y - mean_cost) ** 2 for y in costs)
    ss_res = sum((y - a * x) ** 2 for x, y in zip(xs, costs))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return a, r_squared


def run(config: Config | None = None) -> ExperimentResult:
    """Run E9 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    result = ExperimentResult(
        experiment_id="E9",
        title="Point-query cost vs. ||s,t||^2 (Lemma 1's building block)",
        columns=[
            "band",
            "mean_distance",
            "mean_settled",
            "settled_per_d2",
        ],
        expectation=(
            "settled nodes grow ~quadratically with network distance; the "
            "per-d^2 ratio is roughly constant across bands (uniform node "
            "density); overall R^2 of the quadratic fit is high"
        ),
    )
    all_distances: list[float] = []
    all_costs: list[float] = []
    for lo, hi in config.distance_bands:
        queries = distance_bounded_queries(
            network, config.queries_per_band, lo, hi, seed=config.seed
        )
        band_distances: list[float] = []
        band_costs: list[float] = []
        for query in queries:
            stats = SearchStats()
            path = dijkstra_path(network, query.source, query.destination, stats=stats)
            band_distances.append(path.distance)
            band_costs.append(stats.settled_nodes)
        all_distances.extend(band_distances)
        all_costs.extend(band_costs)
        mean_d = sum(band_distances) / len(band_distances)
        mean_c = sum(band_costs) / len(band_costs)
        result.rows.append(
            {
                "band": f"[{lo}, {hi}]",
                "mean_distance": mean_d,
                "mean_settled": mean_c,
                "settled_per_d2": mean_c / (mean_d * mean_d),
            }
        )
    a, r_squared = _quadratic_fit(all_distances, all_costs)
    result.notes = (
        f"quadratic fit settled = {a:.4f} * d^2 with R^2 = {r_squared:.4f} "
        f"over {len(all_costs)} queries"
    )
    return result


if __name__ == "__main__":
    print(run())
