"""E14 — Live traffic pipeline: staleness and throughput vs churn rate.

PR 5's re-weight path had to run between batches; the live pipeline
(:mod:`repro.service.pipeline`) removes that restriction with a
copy-on-write epoch handoff, at the price of bounded staleness.  This
experiment quantifies the trade across traffic churn rates: a serving
stack answers a fixed obfuscated workload at full rate while a timed
event stream re-weights random edges through the background
:class:`~repro.service.pipeline.RecustomizeWorker`.  For each rate we
report query throughput (absolute and as a fraction of the no-churn
baseline), the cells actually recustomized per minute, and the
event→install staleness percentiles — the numbers the CI bench gate
(`staleness_p95_ms`, `throughput_under_churn_pct`) watches over time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.query import ObfuscatedPathQuery
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.service.cache import ResultCache
from repro.service.pipeline import TrafficPipeline
from repro.service.serving import ServingConfig, ServingStack
from repro.workloads.scenarios import uniform_churn

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E14 parameters."""

    grid_width: int = 20
    grid_height: int = 20
    churn_per_min: list[int] = field(
        default_factory=lambda: [0, 600, 3000, 12000]
    )
    duration_s: float = 0.4
    batch_size: int = 8
    set_size: int = 3
    num_queries: int = 24
    seed: int = 14


def _serve_under_churn(
    stack: ServingStack,
    queries: list[ObfuscatedPathQuery],
    events,
    duration_s: float,
    batch_size: int,
) -> tuple[int, float, object]:
    """Serve for ``duration_s`` while publishing ``events`` on schedule.

    Returns ``(queries_served, elapsed_s, pipeline_snapshot)``.  Events
    carry ``at_ms`` schedules; each serving iteration publishes the
    ones that are due, so the churn rate tracks wall time without a
    feeder thread muddying the measurement.
    """
    pipeline = TrafficPipeline(stack, debounce_ms=2.0)
    pipeline.start()
    served = 0
    cursor = 0
    start = time.perf_counter()
    try:
        while True:
            elapsed = time.perf_counter() - start
            if elapsed >= duration_s:
                break
            due_ms = elapsed * 1000.0
            while cursor < len(events) and events[cursor].at_ms <= due_ms:
                pipeline.publish(events[cursor])
                cursor += 1
            batch = [
                queries[(served + i) % len(queries)]
                for i in range(batch_size)
            ]
            stack.answer_batch(batch)
            served += len(batch)
        elapsed = time.perf_counter() - start
    finally:
        pipeline.stop()
    return served, elapsed, pipeline.snapshot()


def run(config: Config | None = None) -> ExperimentResult:
    """Run E14 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1,
        seed=config.seed,
    )
    rng = random.Random(config.seed)
    nodes = list(network.nodes())
    queries = [
        ObfuscatedPathQuery(
            tuple(rng.sample(nodes, config.set_size)),
            tuple(rng.sample(nodes, config.set_size)),
        )
        for _ in range(config.num_queries)
    ]

    result = ExperimentResult(
        experiment_id="E14",
        title="Live traffic pipeline: staleness and throughput vs churn rate",
        columns=[
            "churn_per_min",
            "events",
            "installs",
            "cells_per_min",
            "queries_per_s",
            "throughput_pct",
            "staleness_p95_ms",
            "staleness_max_ms",
        ],
        expectation=(
            "query throughput stays near the no-churn baseline while the "
            "cells-recustomized rate scales with the event rate; "
            "staleness p95 stays in the debounce-window regime until the "
            "worker saturates"
        ),
    )
    baseline_rate: float | None = None
    for rate in config.churn_per_min:
        # Fresh stack per row: each run mutates weights, and rows must
        # not inherit the previous row's churned geometry or caches.
        # The result cache is disabled so every row measures *search*
        # throughput — churn changes the fingerprint on each install,
        # and a cache-hit baseline would make the comparison meaningless.
        stack = ServingStack.from_config(
            network.copy(),
            ServingConfig(engine="overlay-csr", max_workers=2),
            result_cache=ResultCache(capacity=0),
        )
        stack.warm()
        total_events = max(1, round(rate * config.duration_s / 60.0))
        events = (
            uniform_churn(
                stack.network,
                duration_ms=round(config.duration_s * 1000.0),
                events=total_events,
                seed=config.seed + rate,
            )
            if rate > 0
            else []
        )
        served, elapsed, snap = _serve_under_churn(
            stack, queries, events, config.duration_s, config.batch_size
        )
        qps = served / elapsed if elapsed > 0 else 0.0
        if baseline_rate is None:
            baseline_rate = qps
        throughput_pct = 100.0 * qps / baseline_rate if baseline_rate else 0.0
        minutes = elapsed / 60.0 if elapsed > 0 else 1.0
        # Snapshot-derived columns come from the canonical report shape
        # (PipelineSnapshot.to_dict) so key names cannot drift from what
        # serve-replay and the gateway's /v1/metrics emit.
        snap_doc = snap.to_dict()
        result.rows.append(
            {
                "churn_per_min": rate,
                "events": snap_doc["events"],
                "installs": snap_doc["installs"],
                "cells_per_min": round(
                    snap_doc["cells_recustomized"] / minutes, 1
                ),
                "queries_per_s": round(qps, 1),
                "throughput_pct": round(throughput_pct, 1),
                "staleness_p95_ms": round(snap_doc["staleness_p95_ms"], 2),
                "staleness_max_ms": round(snap_doc["staleness_max_ms"], 2),
            }
        )
        stack.close()
    result.notes = (
        f"{config.num_queries} obfuscated queries round-robined for "
        f"{config.duration_s}s per rate on a "
        f"{config.grid_width}x{config.grid_height} grid (overlay-csr, "
        "first row = no-churn baseline); timing-sensitive numbers vary "
        "run to run"
    )
    return result


if __name__ == "__main__":
    print(run())
