"""E8 — Query clustering ablation (Section IV's first obfuscation step).

Sweep the clustering diameter bound for a batch of requests drawn from a
few neighborhoods.  Tight bounds make many small clusters: cheap shared
trees but small real-endpoint anonymity sets.  Loose bounds make one big
cluster: maximal sharing but the SSMD trees must cover everyone's
geometry.  The table exposes the trade-off and the cost per unit of
privacy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.experiments.harness import ExperimentResult
from repro.network.generators import grid_network
from repro.workloads.queries import hotspot_queries, requests_from_queries

__all__ = ["Config", "run"]


@dataclass(slots=True)
class Config:
    """E8 parameters."""

    grid_width: int = 40
    grid_height: int = 40
    num_requests: int = 16
    f_s: int = 3
    f_t: int = 3
    diameter_bounds: list[float] = field(
        default_factory=lambda: [4.0, 8.0, 16.0, float("inf")]
    )
    num_hotspots: int = 3
    seed: int = 8


def run(config: Config | None = None) -> ExperimentResult:
    """Run E8 and return its table."""
    if config is None:
        config = Config()
    network = grid_network(
        config.grid_width, config.grid_height, perturbation=0.1, seed=config.seed
    )
    queries = hotspot_queries(
        network, config.num_requests, num_hotspots=config.num_hotspots,
        seed=config.seed,
    )
    setting = ProtectionSetting(config.f_s, config.f_t)

    result = ExperimentResult(
        experiment_id="E8",
        title="Shared-query clustering: diameter bound vs. cost and privacy",
        columns=[
            "diameter_bound",
            "clusters",
            "settled_nodes",
            "mean_breach",
            "candidate_paths",
            "cost_per_bit",
        ],
        expectation=(
            "tighter bounds -> more clusters, lower total cost, higher "
            "breach; looser bounds -> fewer clusters, more cost, lower "
            "breach; cost_per_bit exposes the sweet spot"
        ),
    )
    import math

    for bound in config.diameter_bounds:
        system = OpaqueSystem(
            network,
            mode="shared",
            max_source_diameter=bound,
            max_destination_diameter=bound,
            seed=config.seed,
        )
        requests = requests_from_queries(queries, setting)
        system.submit(requests)
        report = system.last_report
        assert report is not None
        mean_breach = report.mean_breach
        privacy_bits = -math.log2(mean_breach) if mean_breach > 0 else float("inf")
        result.rows.append(
            {
                "diameter_bound": bound,
                "clusters": len(report.records),
                "settled_nodes": report.server_stats.settled_nodes,
                "mean_breach": mean_breach,
                "candidate_paths": report.candidate_paths,
                "cost_per_bit": report.server_stats.settled_nodes
                / max(privacy_bits, 1e-9),
            }
        )
    return result


if __name__ == "__main__":
    print(run())
