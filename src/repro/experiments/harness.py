"""Experiment result container and suite runner."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.experiments.tables import format_table

__all__ = ["ExperimentResult", "run_all"]


@dataclass(slots=True)
class ExperimentResult:
    """Structured output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Short id matching DESIGN.md's index (``"E1"`` ...).
    title:
        Human-readable title.
    columns:
        Column order for rendering.
    rows:
        One mapping per table row.
    expectation:
        The paper-derived shape this run is supposed to show.
    notes:
        Free-form remarks filled in by the experiment.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    expectation: str = ""
    notes: str = ""

    def to_table(self) -> str:
        """Render the rows as an aligned text table."""
        return format_table(self.columns, self.rows)

    def column(self, name: str) -> list:
        """Extract one column as a list (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def __str__(self) -> str:
        header = f"[{self.experiment_id}] {self.title}"
        parts = [header, "=" * len(header), self.to_table()]
        if self.expectation:
            parts.append(f"expected shape: {self.expectation}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


def run_all(
    experiment_ids: Sequence[str] | None = None,
    telemetry_dir=None,
) -> list[ExperimentResult]:
    """Run the full suite (or a subset by id) with default configs.

    Imports lazily so ``repro.experiments`` stays cheap to import.

    Parameters
    ----------
    experiment_ids:
        Subset of ids to run (``None`` = the whole suite, in order).
    telemetry_dir:
        When given, the run is instrumented: kernel counters are
        collected through a
        :class:`~repro.obs.record.MetricsRecorder` and each experiment
        runs inside an ``experiment.<id>`` root span; ``metrics.json``
        and ``traces.jsonl`` are written into this directory (created
        if missing).  Outputs contain aggregates only — the package's
        privacy redaction invariant applies.
    """
    from repro.experiments import (
        e1_breach,
        e2_processing_cost,
        e3_mechanism_comparison,
        e4_independent_vs_shared,
        e5_collusion,
        e6_scalability,
        e7_endpoint_strategies,
        e8_clustering,
        e9_cost_model,
        e10_batching_window,
        e11_protection_sizing,
        e12_linkage,
        e13_partition_overlay,
        e14_pipeline,
        e15_parallel_customization,
    )

    modules = {
        "E1": e1_breach,
        "E2": e2_processing_cost,
        "E3": e3_mechanism_comparison,
        "E4": e4_independent_vs_shared,
        "E5": e5_collusion,
        "E6": e6_scalability,
        "E7": e7_endpoint_strategies,
        "E8": e8_clustering,
        "E9": e9_cost_model,
        "E10": e10_batching_window,
        "E11": e11_protection_sizing,
        "E12": e12_linkage,
        "E13": e13_partition_overlay,
        "E14": e14_pipeline,
        "E15": e15_parallel_customization,
    }
    if experiment_ids is None:
        selected = list(modules)
    else:
        unknown = [e for e in experiment_ids if e not in modules]
        if unknown:
            raise KeyError(f"unknown experiment ids: {unknown}")
        selected = list(experiment_ids)
    if telemetry_dir is None:
        return [modules[eid].run() for eid in selected]

    from pathlib import Path

    from repro.obs import MetricsRecorder, Tracer, recording

    out = Path(telemetry_dir)
    out.mkdir(parents=True, exist_ok=True)
    recorder = MetricsRecorder()
    tracer = Tracer()
    results: list[ExperimentResult] = []
    with recording(recorder):
        for eid in selected:
            with tracer.span(f"experiment.{eid}") as span:
                result = modules[eid].run()
                span.set("rows", len(result.rows))
            results.append(result)
    (out / "metrics.json").write_text(
        recorder.registry.to_json(), encoding="utf-8"
    )
    tracer.write_jsonl(out / "traces.jsonl")
    return results
