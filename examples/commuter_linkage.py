#!/usr/bin/env python
"""The commuter problem: repeated queries and sticky decoys (E12).

Section II of the paper warns that "the server can accumulate all the
path queries received to learn where individuals travel".  Bob asks for
the same home-to-office directions every morning.  Even though each query
is obfuscated with f_S = f_T = 4 (breach 1/16 per query), a server that
can link his sessions intersects the candidate sets across mornings:

* with fresh random decoys, the intersection collapses onto Bob's true
  trip within a couple of days;
* with sticky decoys (deterministic per query), every morning shows the
  server the exact same candidate sets — nothing to intersect.

Run:  python examples/commuter_linkage.py
"""

from __future__ import annotations

from repro import ClientRequest, PathQuery, ProtectionSetting
from repro.core.attacks import LinkageAttack
from repro.core.obfuscator import PathQueryObfuscator
from repro.network import grid_network


def main() -> None:
    city = grid_network(25, 25, perturbation=0.1, seed=13)
    bob = ClientRequest(
        "bob", PathQuery(52, 571), ProtectionSetting(f_s=4, f_t=4)
    )
    attack = LinkageAttack()
    print("Bob commutes 52 -> 571 daily, obfuscated at f_S = f_T = 4 "
          "(per-query breach 1/16).\n")

    print(f"{'day':>3}  {'fresh decoys':>14}  {'sticky decoys':>14}")
    fresh_obs, sticky_obs = [], []
    fresh_obfuscator = PathQueryObfuscator(city, seed=13)
    sticky_obfuscator = PathQueryObfuscator(city, seed=13)
    for day in range(1, 8):
        fresh_obs.append(fresh_obfuscator.obfuscate_independent(bob).query)
        sticky_obs.append(
            sticky_obfuscator.obfuscate_independent(bob, sticky_key="bob").query
        )
        fresh = attack.intersect(fresh_obs)
        sticky = attack.intersect(sticky_obs)

        def fmt(outcome):
            label = f"1/{round(1 / outcome.breach_probability)}"
            return f"{label:>10}{' !' if outcome.exposed else '  '}"

        print(f"{day:>3}  {fmt(fresh):>14}  {fmt(sticky):>14}")

    fresh = attack.intersect(fresh_obs)
    print(f"\nAfter a week of fresh decoys the server's candidate set is "
          f"{sorted(fresh.candidate_sources)} -> "
          f"{sorted(fresh.candidate_destinations)}"
          f"{'  — Bob is fully identified.' if fresh.exposed else '.'}")
    print("With sticky decoys the server never learns more than it did on "
          "day one.")


if __name__ == "__main__":
    main()
