#!/usr/bin/env python
"""The paper's motivating scenario: Alice, the clinic, and a curious server.

Section II of the paper: Alice queries directions from home to an
infertility clinic.  A semi-trusted server armed with public information
(who lives where, what business sits at which address) can link her to
the clinic.  This example plays the full story on a TIGER-like suburban
map:

1. Alice queries directly -> the server identifies her trip outright.
2. Alice uses OPAQUE with geometry-only fakes -> a prior-aware server
   still concentrates suspicion on her (the fakes are empty fields).
3. Alice uses OPAQUE with popularity-matched fakes -> the server's
   posterior collapses to the Definition 2 bound.

Run:  python examples/alice_clinic.py
"""

from __future__ import annotations

from repro import ClientRequest, OpaqueSystem, PathQuery, ProtectionSetting
from repro.core.attacks import ServerAdversary
from repro.core.endpoints import PopularityWeightedStrategy, UniformEndpointStrategy
from repro.core.privacy import posterior_breach
from repro.network import tiger_like_network
from repro.workloads import popularity_map


def main() -> None:
    suburbia = tiger_like_network(blocks=4, block_size=5, seed=11)
    nodes = list(suburbia.nodes())

    # Public information: trip-endpoint popularity (voter rolls + yellow
    # pages give the server a prior over who travels where).
    public_prior = popularity_map(suburbia, seed=11, skew=1.2)

    # Alice's home and the clinic are ordinary addresses — drawn from the
    # same popularity distribution real trips follow.
    ranked = sorted(nodes, key=lambda n: public_prior[n], reverse=True)
    home = ranked[10]
    clinic = ranked[25]
    alice = ClientRequest("alice", PathQuery(home, clinic), ProtectionSetting(4, 4))
    print(f"Alice's true query: home={home} -> clinic={clinic}\n")

    # --- 1. No protection -------------------------------------------------
    print("1. Direct query: the server sees (home, clinic) verbatim.")
    print("   breach probability = 1.0 — Alice is fully identified.\n")

    # --- 2. OPAQUE with naive (uniform) fakes ------------------------------
    system = OpaqueSystem(
        suburbia, mode="independent",
        strategy=UniformEndpointStrategy(), seed=11,
    )
    system.submit([alice])
    record = system.last_report.records[0]
    naive_breach = posterior_breach(
        record.query, alice.query, public_prior, public_prior
    )
    adversary = ServerAdversary(public_prior, public_prior, seed=1)
    guess = adversary.best_guess(record.query)
    print("2. OPAQUE, uniform random fakes (f_S=f_T=4):")
    print(f"   Definition 2 bound: {1/16:.4f}")
    print(f"   prior-aware server's posterior on Alice: {naive_breach:.4f}")
    print(f"   server's best guess: {guess} "
          f"({'CORRECT' if guess == alice.query.as_pair() else 'wrong'})\n")

    # --- 3. OPAQUE with popularity-matched fakes ---------------------------
    system = OpaqueSystem(
        suburbia, mode="independent",
        strategy=PopularityWeightedStrategy(public_prior), seed=11,
    )
    system.submit([alice])
    record = system.last_report.records[0]
    matched_breach = posterior_breach(
        record.query, alice.query, public_prior, public_prior
    )
    guess = ServerAdversary(public_prior, public_prior, seed=1).best_guess(
        record.query
    )
    print("3. OPAQUE, popularity-matched fakes (f_S=f_T=4):")
    print(f"   prior-aware server's posterior on Alice: {matched_breach:.4f}")
    print(f"   server's best guess: {guess} "
          f"({'CORRECT' if guess == alice.query.as_pair() else 'wrong'})")
    print("\nPopularity-matched decoys push the informed adversary back to "
          "(roughly) the uniform-guessing bound.")


if __name__ == "__main__":
    main()
