#!/usr/bin/env python
"""Every privacy mechanism on the same workload (Figure 2 as a program).

Runs direct querying, the landmark approach, spatial cloaking, plain
fake-query obfuscation, and OPAQUE over one workload and prints the
result-quality / privacy / overhead scorecard — the paper's Section II
comparison with numbers attached.

Run:  python examples/mechanism_shootout.py
"""

from __future__ import annotations

from repro.baselines import (
    CloakingMechanism,
    DirectMechanism,
    LandmarkMechanism,
    OpaqueMechanism,
    PlainObfuscationMechanism,
)
from repro.core.query import ProtectionSetting
from repro.experiments.tables import format_table
from repro.network import grid_network
from repro.workloads import (
    distance_bounded_queries,
    requests_from_queries,
    uniform_queries,
)


def main() -> None:
    city = grid_network(30, 30, perturbation=0.1, seed=31)
    queries = distance_bounded_queries(city, 15, 6.0, 14.0, seed=31)
    requests = requests_from_queries(queries, ProtectionSetting(3, 3))
    landmarks = [q.source for q in uniform_queries(city, 10, seed=99)]

    mechanisms = [
        DirectMechanism(city),
        LandmarkMechanism(city, landmarks),
        CloakingMechanism(city, cell_size=4.0, seed=31),
        PlainObfuscationMechanism(city, num_fakes=8, seed=31),
        OpaqueMechanism(city, seed=31),
    ]

    rows = []
    for mechanism in mechanisms:
        outcomes = [mechanism.answer(r) for r in requests]
        n = len(outcomes)
        displacements = [
            o.endpoint_displacement
            for o in outcomes
            if o.endpoint_displacement != float("inf")
        ]
        rows.append(
            {
                "mechanism": mechanism.name,
                "exact": f"{sum(o.exact for o in outcomes)}/{n}",
                "displacement": (
                    sum(displacements) / len(displacements) if displacements else float("inf")
                ),
                "breach": sum(o.breach for o in outcomes) / n,
                "settled": sum(o.server_stats.settled_nodes for o in outcomes),
                "bytes": sum(o.traffic_bytes for o in outcomes),
            }
        )

    print("15 queries, protection f_S=f_T=3 (plain obfuscation: 8 fakes "
          "for matched 1/9 anonymity)\n")
    print(format_table(
        ["mechanism", "exact", "displacement", "breach", "settled", "bytes"], rows
    ))
    print(
        "\nReading: direct is exact but fully exposed; landmark/cloaking are "
        "private\nbut answer the wrong question; plain obfuscation and OPAQUE "
        "are both exact and\nprivate — OPAQUE just pays far less for it."
    )


if __name__ == "__main__":
    main()
