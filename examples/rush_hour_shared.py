#!/usr/bin/env python
"""Shared obfuscated path queries at rush hour (Section III-C / IV).

Sixteen commuters in the same part of town request directions within one
obfuscation window.  The obfuscator clusters them and issues shared
obfuscated path queries, so each commuter hides among the others' *real*
endpoints.  The example compares server load, per-user privacy and
collusion resistance against the independent variant.

Run:  python examples/rush_hour_shared.py
"""

from __future__ import annotations

from repro import OpaqueSystem
from repro.core.attacks import CollusionAttack
from repro.core.query import ProtectionSetting
from repro.network import grid_network
from repro.workloads import hotspot_queries, requests_from_queries


def main() -> None:
    city = grid_network(40, 40, perturbation=0.1, seed=23)
    # Commuters live all over town; most head to a couple of hotspots
    # (the business district, the stadium).
    queries = hotspot_queries(city, 16, num_hotspots=2, seed=23)
    setting = ProtectionSetting(f_s=3, f_t=3)

    print(f"{len(queries)} concurrent requests, protection f_S=f_T=3\n")
    summary = {}
    for mode in ("independent", "shared"):
        system = OpaqueSystem(
            city,
            mode=mode,
            max_source_diameter=20.0,
            max_destination_diameter=20.0,
            seed=23,
        )
        requests = requests_from_queries(queries, setting)
        system.submit(requests)
        report = system.last_report
        summary[mode] = report
        print(f"== {mode} obfuscation ==")
        print(f"  obfuscated queries sent to server: {len(report.records)}")
        print(f"  server settled nodes:              {report.server_stats.settled_nodes}")
        print(f"  candidate paths computed:          {report.candidate_paths}")
        print(f"  mean per-user breach:              {report.mean_breach:.4f}")

        # Collusion: the server recruits two participants of the largest
        # record and also knows the obfuscator's decoy dictionary.
        record = max(report.records, key=lambda r: len(r.requests))
        victim = record.requests[0]
        colluders = [r.user for r in record.requests[1:3]]
        outcome = CollusionAttack(
            colluding_users=colluders, knows_fake_pool=True
        ).attack(record, victim)
        print(f"  collusion ({len(colluders)} colluders + fake pool known): "
              f"victim breach {outcome.breach_probability:.4f}"
              f"{'  ** EXPOSED **' if outcome.exposed else ''}\n")

    indep = summary["independent"]
    shared = summary["shared"]
    saving = 1 - shared.server_stats.settled_nodes / indep.server_stats.settled_nodes
    print(f"Shared obfuscation served the same 16 commuters with "
          f"{saving:.0%} less search work and "
          f"{indep.mean_breach / shared.mean_breach:.1f}x lower breach probability.")


if __name__ == "__main__":
    main()
