#!/usr/bin/env python
"""Quickstart: protect one directions search with OPAQUE.

Builds a small city grid, submits a single protected path query through
the full client-obfuscator-server pipeline, and prints what each party
saw — the user's exact path on one side, the server's obfuscated view on
the other.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClientRequest, OpaqueSystem, PathQuery, ProtectionSetting
from repro.core.privacy import breach_probability
from repro.network import grid_network


def main() -> None:
    # A 20x20-intersection city; edge weights are street lengths.
    city = grid_network(20, 20, perturbation=0.1, seed=7)

    # Alice wants directions from node 21 (home) to node 352 (clinic),
    # hidden among 3 candidate sources x 3 candidate destinations.
    request = ClientRequest(
        user="alice",
        query=PathQuery(21, 352),
        setting=ProtectionSetting(f_s=3, f_t=3),
    )

    system = OpaqueSystem(city, mode="independent", seed=7)
    paths = system.submit([request])

    path = paths["alice"]
    print("== What Alice gets back ==")
    print(f"exact shortest path, {path.num_edges} road segments, "
          f"distance {path.distance:.2f}")
    print(f"route: {' -> '.join(str(n) for n in path.nodes[:8])} ...")

    report = system.last_report
    record = report.records[0]
    print("\n== What the server saw ==")
    print(f"obfuscated query {record.query}")
    print(f"candidate sources:      {record.query.sources}")
    print(f"candidate destinations: {record.query.destinations}")
    print(f"breach probability (Definition 2): "
          f"{breach_probability(record.query):.4f} "
          f"(paper example value for f=(2,3) would be 1/6)")

    print("\n== What the protection cost ==")
    print(f"server settled {report.server_stats.settled_nodes} nodes "
          f"across {report.candidate_paths} candidate paths "
          f"({report.discarded_paths} were decoys)")
    print(f"traffic on the server link: {report.traffic.server_side_bytes} bytes")


if __name__ == "__main__":
    main()
