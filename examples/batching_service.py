#!/usr/bin/env python
"""Running OPAQUE as an online service: the batching-window dial (E10).

The obfuscator is a live middle tier — requests arrive over time and
shared obfuscated path queries only exist if several requests are in hand
at once.  This example simulates Poisson arrivals against batching
windows from 0.5 s to 8 s and prints the latency / privacy / server-cost
trade-off an operator would tune.

Run:  python examples/batching_service.py
"""

from __future__ import annotations

from repro.core.query import ProtectionSetting
from repro.core.system import OpaqueSystem
from repro.experiments.tables import format_table
from repro.network import grid_network
from repro.service import BatchingObfuscationService, poisson_arrivals
from repro.workloads import hotspot_queries, requests_from_queries


def main() -> None:
    city = grid_network(30, 30, perturbation=0.1, seed=47)
    queries = hotspot_queries(city, 40, num_hotspots=2, seed=47)
    arrival_rate = 2.0  # requests per second

    rows = []
    for window in (0.5, 1.0, 2.0, 4.0, 8.0):
        system = OpaqueSystem(city, mode="shared", seed=47)
        service = BatchingObfuscationService(system, window=window)
        requests = requests_from_queries(queries, ProtectionSetting(3, 3))
        arrivals = poisson_arrivals(requests, rate=arrival_rate, seed=47)
        _results, report = service.run(arrivals)
        rows.append(
            {
                "window_s": window,
                "mean_latency_s": report.mean_latency,
                "p95_latency_s": report.p95_latency,
                "mean_breach": report.mean_breach,
                "queries_to_server": report.obfuscated_queries,
                "settled_nodes": report.server_settled_nodes,
            }
        )

    print(f"40 requests, Poisson arrivals at {arrival_rate}/s, shared mode, "
          f"f_S = f_T = 3\n")
    print(format_table(
        ["window_s", "mean_latency_s", "p95_latency_s", "mean_breach",
         "queries_to_server", "settled_nodes"],
        rows,
    ))
    print(
        "\nReading: every doubling of the window roughly doubles latency but "
        "gathers\nmore co-travellers per shared query — breach probability "
        "falls an order of\nmagnitude across the sweep while server work "
        "shrinks. Pick the window your\nlatency budget allows."
    )


if __name__ == "__main__":
    main()
